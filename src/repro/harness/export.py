"""Machine-readable export of experiment results.

The bench targets archive human-readable renders under ``results/``;
this module serializes the same data as JSON and CSV so downstream
tooling (plotting scripts, regression dashboards) can consume the
reproduction without parsing tables.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from repro.metrics.aggregate import ResultGrid
from repro.metrics.timeliness import timeliness_breakdown
from repro.sim.results import DemandClass, SimResult


def result_to_dict(result: SimResult) -> dict[str, Any]:
    """Flatten one simulation result to JSON-friendly primitives."""
    breakdown = timeliness_breakdown(result)
    return {
        "workload": result.workload,
        "prefetcher": result.prefetcher,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "mpki": result.mpki,
        "demand_accesses": result.demand_accesses,
        "l1_misses": result.l1_misses,
        "llc_misses": result.llc_misses,
        "prefetches_issued": result.prefetches_issued,
        "prefetch_fills": result.prefetch_fills,
        "useful_prefetches": result.useful_prefetches,
        "wrong_prefetches": result.wrong_prefetches,
        "demand_bytes_read": result.demand_bytes_read,
        "prefetch_bytes_read": result.prefetch_bytes_read,
        "storage_bits": result.storage_bits,
        "accuracy": result.accuracy,
        "timely_fraction": breakdown.timely,
        "shorter_waiting_fraction": breakdown.shorter_waiting,
        "non_timely_fraction": breakdown.non_timely,
        "missing_fraction": breakdown.missing,
        "plain_hit_fraction": breakdown.plain_hit,
        "wrong_fraction": breakdown.wrong,
        "classes": {
            cls.value: count for cls, count in result.classes.items()
        },
    }


def grid_to_records(grid: ResultGrid) -> list[dict[str, Any]]:
    """All grid cells as flat records, workload-major order."""
    return [result_to_dict(result) for result in grid]


def write_json(grid: ResultGrid, path: str | Path, **metadata: Any) -> None:
    """Write a grid (plus free-form metadata) as a JSON document."""
    document = {
        "metadata": metadata,
        "workloads": grid.workloads,
        "prefetchers": grid.prefetchers,
        "results": grid_to_records(grid),
    }
    if grid.degraded_cells:
        document["degraded"] = [list(cell) for cell in grid.degraded_cells]
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True))


#: Columns of the CSV export, in order (the nested class counts are
#: flattened into the *_fraction columns already).
CSV_COLUMNS = [
    "workload", "prefetcher", "instructions", "cycles", "ipc", "mpki",
    "demand_accesses", "l1_misses", "llc_misses", "prefetches_issued",
    "prefetch_fills", "useful_prefetches", "wrong_prefetches",
    "demand_bytes_read", "prefetch_bytes_read", "storage_bits",
    "accuracy", "timely_fraction", "shorter_waiting_fraction",
    "non_timely_fraction", "missing_fraction", "plain_hit_fraction",
    "wrong_fraction",
]


def write_csv(grid: ResultGrid, path: str | Path) -> None:
    """Write a grid as CSV, one row per (workload, prefetcher) cell."""
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=CSV_COLUMNS,
                                extrasaction="ignore")
        writer.writeheader()
        for record in grid_to_records(grid):
            writer.writerow(record)


def load_json(path: str | Path) -> dict[str, Any]:
    """Read back a document written by :func:`write_json`."""
    return json.loads(Path(path).read_text())
