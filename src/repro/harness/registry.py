"""Prefetcher factories for the evaluation grid."""

from __future__ import annotations

from typing import Callable

from repro.common.errors import ConfigError
from repro.core.hybrid import CbwsSmsPrefetcher
from repro.core.predictor import CbwsConfig
from repro.core.prefetcher import CbwsPrefetcher
from repro.prefetchers.ampm import AmpmPrefetcher
from repro.prefetchers.base import Prefetcher
from repro.prefetchers.ghb import GhbConfig, GhbPrefetcher
from repro.prefetchers.markov import MarkovPrefetcher
from repro.prefetchers.none import NoPrefetcher
from repro.prefetchers.sms import SmsPrefetcher
from repro.prefetchers.stride import StridePrefetcher
from repro.prefetchers.throttle import ThrottledPrefetcher

#: Factories build a *fresh* prefetcher per simulation (no shared state).
PREFETCHER_FACTORIES: dict[str, Callable[[], Prefetcher]] = {
    "no-prefetch": NoPrefetcher,
    "stride": StridePrefetcher,
    "ghb-pc/dc": lambda: GhbPrefetcher(GhbConfig(mode="pc")),
    "ghb-g/dc": lambda: GhbPrefetcher(GhbConfig(mode="global")),
    "sms": SmsPrefetcher,
    "cbws": CbwsPrefetcher,
    "cbws+sms": CbwsSmsPrefetcher,
    # Extensions beyond the paper's evaluated set (related work).
    "ampm": AmpmPrefetcher,
    "markov": MarkovPrefetcher,
    "fdp(cbws+sms)": lambda: ThrottledPrefetcher(CbwsSmsPrefetcher()),
}

#: The bar order used by Figures 12-15.
PAPER_PREFETCHER_ORDER: list[str] = [
    "no-prefetch",
    "stride",
    "ghb-pc/dc",
    "ghb-g/dc",
    "sms",
    "cbws",
    "cbws+sms",
]

#: The paper's set plus the related-work extensions.
EXTENDED_PREFETCHER_ORDER: list[str] = [
    *PAPER_PREFETCHER_ORDER,
    "ampm",
    "markov",
    "fdp(cbws+sms)",
]


def make_prefetcher(name: str) -> Prefetcher:
    """Build a fresh prefetcher by its evaluation name."""
    try:
        factory = PREFETCHER_FACTORIES[name]
    except KeyError:
        known = ", ".join(PAPER_PREFETCHER_ORDER)
        raise ConfigError(f"unknown prefetcher {name!r}; known: {known}") from None
    return factory()


def make_cbws_variant(config: CbwsConfig, hybrid: bool = False) -> Prefetcher:
    """Build a CBWS(-based) prefetcher with a custom geometry, used by
    the ablation experiments."""
    if hybrid:
        return CbwsSmsPrefetcher(cbws_config=config)
    return CbwsPrefetcher(config)
