"""Prefetcher factories for the evaluation grid.

Beyond the fixed paper set, names may carry an inline parameter block —
``cbws[table_entries=64,max_step=2]`` — that rebuilds the prefetcher
with a custom :class:`~repro.core.predictor.CbwsConfig` geometry.  The
parametrized name is an ordinary string everywhere else in the system
(grid cells, content-addressed :func:`~repro.exec.keys.sim_key`, the
serve wire protocol), which is exactly what makes design-space sweeps
over prefetcher geometry (``repro campaign``) possible without new
plumbing: the name *is* the configuration.
:func:`canonical_prefetcher_name` sorts the parameters so two spellings
of the same geometry share one cache key.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Callable

from repro.common.errors import ConfigError
from repro.core.hybrid import CbwsSmsPrefetcher
from repro.core.predictor import CbwsConfig
from repro.core.prefetcher import CbwsPrefetcher
from repro.prefetchers.ampm import AmpmPrefetcher
from repro.prefetchers.base import Prefetcher
from repro.prefetchers.ghb import GhbConfig, GhbPrefetcher
from repro.prefetchers.learned import (
    PanglossConfig,
    PanglossPrefetcher,
    PythiaConfig,
    PythiaPrefetcher,
)
from repro.prefetchers.markov import MarkovPrefetcher
from repro.prefetchers.none import NoPrefetcher
from repro.prefetchers.sms import SmsPrefetcher
from repro.prefetchers.stride import StridePrefetcher
from repro.prefetchers.throttle import ThrottledPrefetcher

#: Factories build a *fresh* prefetcher per simulation (no shared state).
PREFETCHER_FACTORIES: dict[str, Callable[[], Prefetcher]] = {
    "no-prefetch": NoPrefetcher,
    "stride": StridePrefetcher,
    "ghb-pc/dc": lambda: GhbPrefetcher(GhbConfig(mode="pc")),
    "ghb-g/dc": lambda: GhbPrefetcher(GhbConfig(mode="global")),
    "sms": SmsPrefetcher,
    "cbws": CbwsPrefetcher,
    "cbws+sms": CbwsSmsPrefetcher,
    # Extensions beyond the paper's evaluated set (related work).
    "ampm": AmpmPrefetcher,
    "markov": MarkovPrefetcher,
    "fdp(cbws+sms)": lambda: ThrottledPrefetcher(CbwsSmsPrefetcher()),
    # Learned prefetchers (post-2014 related work).
    "pangloss": PanglossPrefetcher,
    "pythia": PythiaPrefetcher,
}

#: The bar order used by Figures 12-15.
PAPER_PREFETCHER_ORDER: list[str] = [
    "no-prefetch",
    "stride",
    "ghb-pc/dc",
    "ghb-g/dc",
    "sms",
    "cbws",
    "cbws+sms",
]

#: The paper's set plus the related-work extensions.
EXTENDED_PREFETCHER_ORDER: list[str] = [
    *PAPER_PREFETCHER_ORDER,
    "ampm",
    "markov",
    "fdp(cbws+sms)",
    "pangloss",
    "pythia",
]


#: Bases that accept an inline ``[key=value,...]`` parameter block.
#: The bool is the CBWS hybrid flag (True = CBWS over SMS); it is
#: meaningless for the learned families, which build their own configs.
PARAMETRIC_FAMILIES: dict[str, bool] = {
    "cbws": False,       # hybrid=False
    "cbws+sms": True,    # hybrid=True
    "pangloss": False,
    "pythia": False,
}

#: CbwsConfig fields settable through a parametrized name — the
#: geometry knobs the paper's §VI sensitivity study varies.
CBWS_PARAM_FIELDS = frozenset({
    "table_entries",        # differential history table capacity
    "max_step",             # predecessor CBWSs kept / differential depth k
    "predict_steps",        # lookahead depth
    "history_depth",        # shift-register depth
    "max_vector_members",   # CBWS buffer capacity
})

#: PanglossConfig fields settable through a parametrized name.
PANGLOSS_PARAM_FIELDS = frozenset({
    "lines_per_page",
    "page_entries",
    "markov_rows",
    "row_slots",
    "counter_max",
    "degree",
    "confidence_percent",
})

#: PythiaConfig fields settable through a parametrized name.  The
#: learning parameters are floats (``pythia[alpha=0.065]``) and
#: ``feature_set`` is a string (``pythia[feature_set=pc+offset]``);
#: values may not contain commas or brackets (the block grammar).
PYTHIA_PARAM_FIELDS = frozenset({
    "alpha",
    "gamma",
    "epsilon",
    "feature_set",
    "history_len",
    "q_entries",
    "page_entries",
    "inflight_entries",
    "timely_age",
    "useless_age",
})

#: Per-family value parsers: base -> {field: str -> value}.
_PARAM_SCHEMAS: dict[str, dict[str, Callable[[str], object]]] = {
    "cbws": {f: int for f in CBWS_PARAM_FIELDS},
    "cbws+sms": {f: int for f in CBWS_PARAM_FIELDS},
    "pangloss": {f: int for f in PANGLOSS_PARAM_FIELDS},
    "pythia": {
        **{f: int for f in PYTHIA_PARAM_FIELDS},
        "alpha": float,
        "gamma": float,
        "epsilon": float,
        "feature_set": str,
    },
}

#: Per-family default-config factory (for canonical default dropping).
_FAMILY_DEFAULTS: dict[str, Callable[[], object]] = {
    "cbws": CbwsConfig,
    "cbws+sms": CbwsConfig,
    "pangloss": PanglossConfig,
    "pythia": PythiaConfig,
}

_PARAM_BLOCK = re.compile(r"^(?P<base>[^\[\]]+)\[(?P<params>[^\[\]]*)\]$")

_TYPE_LABELS = {int: "an integer", float: "a number", str: "a string"}


def format_param_value(value: object) -> str:
    """The canonical spelling of one inline parameter value.

    Integers print plainly, floats through :func:`repr` (the shortest
    round-tripping form), strings as-is — so a parsed name reformats to
    itself and two spellings of one value share one cache key.
    """
    if isinstance(value, float):
        return repr(value)
    return str(value)


def coerce_param(base: str, key: str, value: object) -> object:
    """Coerce one parameter value to the typed form family ``base``
    takes in an inline block.

    Campaign axes hand values over as whatever the sweep spec parsed
    (strings, ints, floats); this funnels them through the same
    per-family schema as :func:`parse_prefetcher_name` so a swept
    ``pythia.alpha`` point and a hand-written ``pythia[alpha=...]``
    name agree bit-for-bit on the canonical spelling.
    """
    try:
        parser = _PARAM_SCHEMAS[base][key]
    except KeyError:
        raise ConfigError(f"unknown {base} parameter {key!r}") from None
    if isinstance(value, str):
        value = value.strip()
    try:
        return parser(value)
    except (TypeError, ValueError):
        raise ConfigError(
            f"parameter {key!r} of {base} must be "
            f"{_TYPE_LABELS[parser]}, got {value!r}"
        ) from None


def parse_prefetcher_name(name: str) -> tuple[str, dict[str, object]]:
    """Split ``base[k=v,...]`` into its base name and parameter map.

    A plain name returns ``(name, {})``.  Values parse through the
    family's schema (ints for geometry fields, floats for the RL
    learning parameters, strings for ``feature_set``).  Raises
    :class:`ConfigError` on malformed blocks, unknown bases/fields,
    duplicates, or unparsable values.
    """
    match = _PARAM_BLOCK.match(name)
    if match is None:
        if "[" in name or "]" in name:
            raise ConfigError(
                f"malformed prefetcher name {name!r}; want base[k=v,...]"
            )
        return name, {}
    base = match.group("base")
    if base not in PARAMETRIC_FAMILIES:
        known = ", ".join(sorted(PARAMETRIC_FAMILIES))
        raise ConfigError(
            f"prefetcher {base!r} does not accept parameters; "
            f"parametric families: {known}"
        )
    schema = _PARAM_SCHEMAS[base]
    params: dict[str, object] = {}
    body = match.group("params").strip()
    if not body:
        raise ConfigError(
            f"empty parameter block in prefetcher name {name!r}"
        )
    for clause in body.split(","):
        key, separator, value = clause.partition("=")
        key = key.strip()
        if not separator or not key:
            raise ConfigError(
                f"malformed parameter clause {clause!r} in {name!r}; "
                "want key=value"
            )
        if key not in schema:
            known = ", ".join(sorted(schema))
            raise ConfigError(
                f"unknown {base} parameter {key!r} in {name!r}; known: {known}"
            )
        if key in params:
            raise ConfigError(f"duplicate parameter {key!r} in {name!r}")
        parser = schema[key]
        try:
            params[key] = parser(value.strip())
        except ValueError:
            raise ConfigError(
                f"parameter {key!r} in {name!r} must be "
                f"{_TYPE_LABELS[parser]}, got {value.strip()!r}"
            ) from None
    return base, params


def canonical_prefetcher_name(name: str) -> str:
    """The spelling-independent form of a (possibly parametrized) name.

    Parameters sort by key so ``cbws[max_step=2,table_entries=64]`` and
    ``cbws[table_entries=64,max_step=2]`` produce one cache key.
    Parameters equal to the family config's default are dropped —
    ``cbws[table_entries=16]`` *is* ``cbws``, and
    ``pythia[gamma=0.556]`` *is* ``pythia``.
    """
    base, params = parse_prefetcher_name(name)
    if not params:
        return base
    defaults = _FAMILY_DEFAULTS[base]()
    meaningful = {
        key: value for key, value in params.items()
        if value != getattr(defaults, key)
    }
    if not meaningful:
        return base
    body = ",".join(
        f"{key}={format_param_value(meaningful[key])}"
        for key in sorted(meaningful)
    )
    return f"{base}[{body}]"


def make_prefetcher(name: str) -> Prefetcher:
    """Build a fresh prefetcher by its (possibly parametrized) name."""
    base, params = parse_prefetcher_name(name)
    if params:
        if base == "pangloss":
            return PanglossPrefetcher(
                dataclasses.replace(PanglossConfig(), **params)
            )
        if base == "pythia":
            return PythiaPrefetcher(
                dataclasses.replace(PythiaConfig(), **params)
            )
        defaults = CbwsConfig()
        if "max_step" in params and "predict_steps" not in params:
            # predict_steps defaults to "all max_step registers"
            # (Section IV-C); a sweep that shrinks max_step must not trip
            # the predict_steps <= max_step validation.
            params = dict(params)
            params["predict_steps"] = min(defaults.predict_steps,
                                          params["max_step"])
        config = dataclasses.replace(defaults, **params)
        return make_cbws_variant(config, hybrid=PARAMETRIC_FAMILIES[base])
    try:
        factory = PREFETCHER_FACTORIES[name]
    except KeyError:
        known = ", ".join(PAPER_PREFETCHER_ORDER)
        raise ConfigError(f"unknown prefetcher {name!r}; known: {known}") from None
    return factory()


def make_cbws_variant(config: CbwsConfig, hybrid: bool = False) -> Prefetcher:
    """Build a CBWS(-based) prefetcher with a custom geometry, used by
    the ablation experiments."""
    if hybrid:
        return CbwsSmsPrefetcher(cbws_config=config)
    return CbwsPrefetcher(config)
