"""One function per paper table/figure.

Every function returns a small dataclass holding the measured data plus a
``render()`` method producing the rows the paper reports.  The bench
targets in ``benchmarks/`` call these and print the rendering; tests call
them at tiny budgets and assert the expected *shape* (who wins, roughly
by what factor).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.differentials import (
    DifferentialDistribution,
    differential_distribution,
    extract_cbws_sequences,
)
from repro.analysis.workingsets import (
    WorkingSetDistribution,
    working_set_distribution,
)
from repro.core.cbws import differential
from repro.core.predictor import CbwsConfig
from repro.harness.registry import (
    PAPER_PREFETCHER_ORDER,
    make_cbws_variant,
)
from repro.harness.report import format_percent_table, format_table
from repro.harness.runner import GridRunner
from repro.metrics.aggregate import ResultGrid, arithmetic_mean
from repro.metrics.perfcost import perf_cost_table
from repro.metrics.speedup import speedup_table
from repro.metrics.timeliness import TimelinessBreakdown, timeliness_breakdown
from repro.passes.loopstats import LoopRuntimeStats, loop_runtime_stats
from repro.prefetchers.ghb import GhbConfig
from repro.prefetchers.sms import SmsConfig
from repro.prefetchers.storage import (
    cbws_storage,
    ghb_gdc_storage,
    ghb_pcdc_storage,
    sms_storage,
    stride_storage,
    StorageEstimate,
)
from repro.prefetchers.stride import StrideConfig
from repro.sim.results import SimResult
from repro.workloads.registry import ALL_WORKLOADS, LOW_WORKLOADS, MI_WORKLOADS

#: The Figure 5 benchmark subset.
FIGURE5_WORKLOADS = [
    "450.soplex-ref",
    "433.milc-su3imp",
    "stencil-default",
    "radix-simlarge",
    "sgemm-medium",
    "streamcluster-simlarge",
]

#: Prefetchers shown in Figures 12/13/15 (13 omits the no-prefetch bar).
EVALUATED_PREFETCHERS = PAPER_PREFETCHER_ORDER


# ---------------------------------------------------------------------------
# Figure 1 — fraction of runtime in tight loops
# ---------------------------------------------------------------------------


@dataclass
class Figure1Result:
    """Loop-runtime fractions for the memory-intensive benchmarks."""

    stats: dict[str, LoopRuntimeStats]

    @property
    def average(self) -> float:
        """Mean loop fraction over the group (the paper reports >70%)."""
        return arithmetic_mean(
            [stat.loop_fraction for stat in self.stats.values()]
        )

    def render(self) -> str:
        rows = [
            [name, stat.loop_fraction, stat.block_instances]
            for name, stat in self.stats.items()
        ]
        rows.append(["average", self.average, ""])
        return format_table(
            ["benchmark", "loop fraction", "block instances"],
            rows,
            title="Figure 1: fraction of runtime in tight innermost loops",
            float_format="{:.1%}",
        )


def figure1(runner: GridRunner | None = None) -> Figure1Result:
    """Measure the tight-loop runtime fraction for the MI group."""
    runner = runner or GridRunner()
    stats = {
        name: loop_runtime_stats(runner.trace(name)) for name in MI_WORKLOADS
    }
    return Figure1Result(stats=stats)


# ---------------------------------------------------------------------------
# Table I / Figures 3-4 — CBWS construction worked example
# ---------------------------------------------------------------------------


@dataclass
class Table1Result:
    """First CBWS vectors of the stencil's innermost loop and their
    consecutive differentials — the Figure 3 / Figure 4 matrices."""

    cbws_vectors: list[tuple[int, ...]]
    differentials: list[tuple[int, ...]]

    @property
    def constant_differential(self) -> bool:
        """True when all shown differentials are identical (Figure 4)."""
        return len(set(self.differentials)) == 1 if self.differentials else False

    def render(self) -> str:
        lines = ["Figure 3: stencil CBWS vectors (cache line numbers)"]
        for index, cbws in enumerate(self.cbws_vectors):
            lines.append(f"  CBWS{index} = {cbws}")
        lines.append("Figure 4: consecutive CBWS differentials")
        for index, delta in enumerate(self.differentials):
            lines.append(f"  CBWS{index + 1}-CBWS{index} = {delta}")
        return "\n".join(lines)


def table1(runner: GridRunner | None = None, instances: int = 8) -> Table1Result:
    """Extract the first stencil CBWSs and their differentials."""
    runner = runner or GridRunner()
    sequences = extract_cbws_sequences(runner.trace("stencil-default"))
    block_id = min(sequences)
    # Skip the first instance: it has no predecessor and the second may
    # still be warming the line-sharing pattern up.
    vectors = sequences[block_id][1 : 1 + instances]
    deltas = [
        differential(older, newer) for older, newer in zip(vectors, vectors[1:])
    ]
    return Table1Result(cbws_vectors=vectors, differentials=deltas)


# ---------------------------------------------------------------------------
# Figure 5 — skew of the CBWS differential distribution
# ---------------------------------------------------------------------------


@dataclass
class Figure5Result:
    """Differential-vector coverage curves per benchmark."""

    distributions: dict[str, DifferentialDistribution]

    def render(self) -> str:
        rows = []
        for name, dist in self.distributions.items():
            rows.append([
                name,
                dist.distinct_vectors,
                dist.coverage_at(0.05),
                dist.coverage_at(0.10),
                dist.coverage_at(0.25),
            ])
        return format_table(
            ["benchmark", "distinct", "top 5%", "top 10%", "top 25%"],
            rows,
            title=(
                "Figure 5: fraction of iterations covered by the most "
                "frequent differential vectors"
            ),
            float_format="{:.1%}",
        )


def figure5(runner: GridRunner | None = None) -> Figure5Result:
    """Measure differential skew for the Figure 5 benchmark subset."""
    runner = runner or GridRunner()
    distributions = {
        name: differential_distribution(runner.trace(name))
        for name in FIGURE5_WORKLOADS
    }
    return Figure5Result(distributions=distributions)


# ---------------------------------------------------------------------------
# Table III — storage budgets
# ---------------------------------------------------------------------------


@dataclass
class Table3Result:
    """Storage bill of materials per prefetcher."""

    estimates: dict[str, StorageEstimate]

    def render(self) -> str:
        rows = [
            [name, estimate.bits, estimate.kilobytes]
            for name, estimate in self.estimates.items()
        ]
        return format_table(
            ["prefetcher", "bits", "KB"],
            rows,
            title="Table III: hardware storage requirements",
            float_format="{:.2f}",
        )


def table3() -> Table3Result:
    """Compute storage budgets from the Table II geometries."""
    ghb = GhbConfig()
    return Table3Result(
        estimates={
            "stride": stride_storage(StrideConfig()),
            "ghb-g/dc": ghb_gdc_storage(ghb),
            "ghb-pc/dc": ghb_pcdc_storage(ghb),
            "sms": sms_storage(SmsConfig()),
            "cbws": cbws_storage(CbwsConfig()),
        }
    )


# ---------------------------------------------------------------------------
# Figures 12-15 — the main evaluation grid
# ---------------------------------------------------------------------------


@dataclass
class Figure12Result:
    """MPKI per (MI workload, prefetcher)."""

    grid: ResultGrid

    def mpki(self, workload: str, prefetcher: str) -> float:
        return self.grid.get(workload, prefetcher).mpki

    def average(self, prefetcher: str) -> float:
        return self.grid.metric_average(prefetcher, lambda r: r.mpki)

    def render(self) -> str:
        headers = ["benchmark", *EVALUATED_PREFETCHERS]
        rows = []
        for workload in self.grid.workloads:
            rows.append([
                workload,
                *[self.mpki(workload, p) for p in EVALUATED_PREFETCHERS],
            ])
        rows.append([
            "average-MI",
            *[self.average(p) for p in EVALUATED_PREFETCHERS],
        ])
        return format_table(
            headers, rows,
            title="Figure 12: last-level-cache MPKI (lower is better)",
            float_format="{:.2f}",
        )


def figure12(runner: GridRunner | None = None) -> Figure12Result:
    """MPKI over the memory-intensive grid."""
    runner = runner or GridRunner()
    grid = runner.run_grid(MI_WORKLOADS, EVALUATED_PREFETCHERS)
    return Figure12Result(grid=grid)


@dataclass
class Figure13Result:
    """Timeliness/accuracy decomposition per (MI workload, prefetcher)."""

    grid: ResultGrid

    def breakdown(self, workload: str, prefetcher: str) -> TimelinessBreakdown:
        return timeliness_breakdown(self.grid.get(workload, prefetcher))

    def average_fraction(self, prefetcher: str, attribute: str) -> float:
        values = [
            getattr(self.breakdown(workload, prefetcher), attribute)
            for workload in self.grid.workloads
        ]
        return arithmetic_mean(values)

    def render(self) -> str:
        prefetchers = [p for p in EVALUATED_PREFETCHERS if p != "no-prefetch"]
        rows = []
        for prefetcher in prefetchers:
            rows.append([
                prefetcher,
                self.average_fraction(prefetcher, "timely"),
                self.average_fraction(prefetcher, "shorter_waiting"),
                self.average_fraction(prefetcher, "non_timely"),
                self.average_fraction(prefetcher, "missing"),
                self.average_fraction(prefetcher, "wrong"),
            ])
        return format_percent_table(
            ["prefetcher", "timely", "shorter-wait", "non-timely",
             "missing", "wrong"],
            rows,
            title=(
                "Figure 13: timeliness and accuracy, averaged over the "
                "memory-intensive group (fractions of demand L2 accesses)"
            ),
        )


def figure13(runner: GridRunner | None = None) -> Figure13Result:
    """Timeliness/accuracy over the memory-intensive grid."""
    runner = runner or GridRunner()
    prefetchers = [p for p in EVALUATED_PREFETCHERS if p != "no-prefetch"]
    grid = runner.run_grid(MI_WORKLOADS, prefetchers)
    return Figure13Result(grid=grid)


@dataclass
class Figure14Result:
    """IPC normalized to SMS for both benchmark groups."""

    grid: ResultGrid
    mi_table: dict[str, dict[str, float]]
    low_table: dict[str, dict[str, float]]
    all_table: dict[str, dict[str, float]]

    def speedup(self, workload: str, prefetcher: str) -> float:
        table = self.mi_table if workload in self.mi_table else self.low_table
        # DEGRADED cells are absent from the table; NaN renders as an
        # explicit hole instead of raising.
        return table[workload].get(prefetcher, float("nan"))

    def average_mi(self, prefetcher: str) -> float:
        return self.mi_table["average"][prefetcher]

    def average_all(self, prefetcher: str) -> float:
        return self.all_table["average"][prefetcher]

    def render(self) -> str:
        headers = ["benchmark", *EVALUATED_PREFETCHERS]
        rows = []
        for workload, values in self.mi_table.items():
            if workload == "average":
                continue
            rows.append([workload, *[values.get(p, float("nan"))
                                     for p in EVALUATED_PREFETCHERS]])
        rows.append([
            "average-MI", *[self.average_mi(p) for p in EVALUATED_PREFETCHERS]
        ])
        for workload, values in self.low_table.items():
            if workload == "average":
                continue
            rows.append([workload, *[values.get(p, float("nan"))
                                     for p in EVALUATED_PREFETCHERS]])
        rows.append([
            "average-ALL", *[self.average_all(p) for p in EVALUATED_PREFETCHERS]
        ])
        return format_table(
            headers, rows,
            title="Figure 14: IPC normalized to SMS (higher is better)",
            float_format="{:.2f}",
        )


def figure14(runner: GridRunner | None = None) -> Figure14Result:
    """Normalized IPC over all 30 benchmarks."""
    runner = runner or GridRunner()
    grid = runner.run_grid(ALL_WORKLOADS, EVALUATED_PREFETCHERS)
    return Figure14Result(
        grid=grid,
        mi_table=speedup_table(grid, workloads=MI_WORKLOADS),
        low_table=speedup_table(grid, workloads=LOW_WORKLOADS),
        all_table=speedup_table(grid, workloads=ALL_WORKLOADS),
    )


@dataclass
class Figure15Result:
    """Performance/cost (IPC per byte read) relative to no-prefetch."""

    grid: ResultGrid
    table: dict[str, dict[str, float]]

    def perf_cost(self, workload: str, prefetcher: str) -> float:
        return self.table[workload].get(prefetcher, float("nan"))

    def average(self, prefetcher: str) -> float:
        return self.table["average"][prefetcher]

    def render(self) -> str:
        headers = ["benchmark", *EVALUATED_PREFETCHERS]
        rows = []
        for workload, values in self.table.items():
            if workload == "average":
                continue
            rows.append([workload, *[values.get(p, float("nan"))
                                     for p in EVALUATED_PREFETCHERS]])
        rows.append([
            "average-MI", *[self.average(p) for p in EVALUATED_PREFETCHERS]
        ])
        return format_table(
            headers, rows,
            title=(
                "Figure 15: performance/cost, IPC per byte read, "
                "normalized to no-prefetch (higher is better)"
            ),
            float_format="{:.2f}",
        )


def figure15(runner: GridRunner | None = None) -> Figure15Result:
    """Performance/cost over the memory-intensive grid."""
    runner = runner or GridRunner()
    grid = runner.run_grid(MI_WORKLOADS, EVALUATED_PREFETCHERS)
    return Figure15Result(grid=grid, table=perf_cost_table(grid))


# ---------------------------------------------------------------------------
# Section IV-A claim — 16 lines cover ~all dynamic blocks
# ---------------------------------------------------------------------------


@dataclass
class WorkingSetClaimResult:
    """Dynamic working-set size distribution across the full suite."""

    distributions: dict[str, WorkingSetDistribution]
    capacity: int = 16

    @property
    def overall_fraction(self) -> float:
        """Weighted fraction of dynamic blocks fitting the capacity."""
        total = sum(d.blocks for d in self.distributions.values())
        if total == 0:
            return 0.0
        covered = sum(
            d.fraction_within(self.capacity) * d.blocks
            for d in self.distributions.values()
        )
        return covered / total

    def render(self) -> str:
        rows = [
            [name, dist.blocks, dist.fraction_within(self.capacity),
             dist.max_size]
            for name, dist in self.distributions.items()
        ]
        rows.append(["overall", "", self.overall_fraction, ""])
        return format_table(
            ["benchmark", "blocks", f"<= {self.capacity} lines", "max"],
            rows,
            title=(
                "Section IV-A: dynamic code blocks whose working set fits "
                f"{self.capacity} cache lines"
            ),
            float_format="{:.1%}",
        )


def working_set_claim(
    runner: GridRunner | None = None,
    capacity: int = 16,
    workloads: list[str] | None = None,
) -> WorkingSetClaimResult:
    """Check the "16 lines map >98% of dynamic blocks" claim."""
    runner = runner or GridRunner()
    names = workloads if workloads is not None else ALL_WORKLOADS
    distributions = {
        name: working_set_distribution(runner.trace(name)) for name in names
    }
    return WorkingSetClaimResult(distributions=distributions, capacity=capacity)


# ---------------------------------------------------------------------------
# Ablations — design choices called out in Sections IV and V
# ---------------------------------------------------------------------------


@dataclass
class AblationResult:
    """IPC per (workload, variant) for one swept parameter."""

    parameter: str
    values: list[int]
    ipc: dict[str, dict[int, float]] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["benchmark", *[f"{self.parameter}={v}" for v in self.values]]
        rows = [
            [workload, *[by_value[v] for v in self.values]]
            for workload, by_value in self.ipc.items()
        ]
        return format_table(
            headers, rows,
            title=f"Ablation: CBWS {self.parameter} sweep (IPC)",
            float_format="{:.3f}",
        )


def _run_ablation(
    runner: GridRunner,
    parameter: str,
    values: list[int],
    make_config,
    workloads: list[str],
) -> AblationResult:
    result = AblationResult(parameter=parameter, values=values)
    for workload in workloads:
        result.ipc[workload] = {}
        for value in values:
            prefetcher = make_cbws_variant(make_config(value))
            sim = runner.run_one(workload, f"cbws[{parameter}={value}]",
                                 prefetcher=prefetcher)
            result.ipc[workload][value] = sim.ipc
    return result


ABLATION_WORKLOADS = ["stencil-default", "sgemm-medium", "fft-simlarge"]


def ablation_history_depth(
    runner: GridRunner | None = None,
    values: list[int] | None = None,
) -> AblationResult:
    """Sweep the number of predecessor CBWSs / prediction steps
    (Section IV-C: "a history of 4 differentials provides sufficient
    performance")."""
    runner = runner or GridRunner()
    values = values or [1, 2, 4]
    return _run_ablation(
        runner,
        "max_step",
        values,
        lambda v: CbwsConfig(max_step=v, predict_steps=v),
        ABLATION_WORKLOADS,
    )


def ablation_table_size(
    runner: GridRunner | None = None,
    values: list[int] | None = None,
) -> AblationResult:
    """Sweep the differential history table capacity (Section VII-A:
    16 entries are "too small" for fft/streamcluster)."""
    runner = runner or GridRunner()
    values = values or [4, 16, 64]
    return _run_ablation(
        runner,
        "table_entries",
        values,
        lambda v: CbwsConfig(table_entries=v),
        ABLATION_WORKLOADS,
    )


def ablation_vector_members(
    runner: GridRunner | None = None,
    values: list[int] | None = None,
) -> AblationResult:
    """Sweep the CBWS buffer capacity (Section VII-C: bzip2's blocks
    overflow 16 lines, but "increasing the number of differentials is
    not justified" for the rest of the suite)."""
    runner = runner or GridRunner()
    values = values or [8, 16, 32]
    return _run_ablation(
        runner,
        "max_vector_members",
        values,
        lambda v: CbwsConfig(max_vector_members=v),
        ["401.bzip2-source", "stencil-default", "sgemm-medium"],
    )


# ---------------------------------------------------------------------------
# Extension — AMPM comparison (related work, Section III-A)
# ---------------------------------------------------------------------------


@dataclass
class ExtensionAmpmResult:
    """IPC of AMPM against the paper's key policies."""

    grid: ResultGrid

    def render(self) -> str:
        prefetchers = ["no-prefetch", "sms", "ampm", "cbws", "cbws+sms"]
        rows = []
        for workload in self.grid.workloads:
            rows.append([
                workload,
                *[self.grid.get(workload, p).ipc for p in prefetchers],
            ])
        return format_table(
            ["benchmark", *prefetchers], rows,
            title=(
                "Extension: AMPM (zone bitmaps, not PC-based) vs the "
                "paper's policies (IPC)"
            ),
            float_format="{:.3f}",
        )


EXTENSION_AMPM_WORKLOADS = [
    "stencil-default",
    "sgemm-medium",
    "462.libquantum-ref",
    "streamcluster-simlarge",
]


def extension_ampm(runner: GridRunner | None = None) -> ExtensionAmpmResult:
    """Compare AMPM with SMS and the CBWS schemes.

    The paper argues (Section III-A) that AMPM, being zone-local, "first
    identifies patterns inside an iteration and, only if such patterns
    are not found, may identify patterns across iterations" — so it
    trails CBWS on loops whose iterations stride across zones (stencil,
    sgemm) while matching it on dense streaming (libquantum).
    """
    runner = runner or GridRunner()
    grid = runner.run_grid(
        EXTENSION_AMPM_WORKLOADS,
        ["no-prefetch", "sms", "ampm", "cbws", "cbws+sms"],
    )
    return ExtensionAmpmResult(grid=grid)


@dataclass
class ExtensionRobustnessResult:
    """Markov correlation and FDP throttling against the hybrid."""

    grid: ResultGrid

    def render(self) -> str:
        prefetchers = ["no-prefetch", "sms", "markov", "cbws+sms",
                       "fdp(cbws+sms)"]
        rows = []
        for workload in self.grid.workloads:
            rows.append([
                workload,
                *[self.grid.get(workload, p).ipc for p in prefetchers],
            ])
        wrong = ["wrong-fraction"]
        for p in prefetchers:
            values = [
                self.grid.get(w, p).wrong_fraction
                for w in self.grid.workloads
            ]
            wrong.append(sum(values) / len(values))
        rows.append(wrong)
        return format_table(
            ["benchmark", *prefetchers], rows,
            title=(
                "Extension: Markov correlation + feedback-directed "
                "throttling (IPC; last row = mean wrong fraction)"
            ),
            float_format="{:.3f}",
        )


EXTENSION_ROBUSTNESS_WORKLOADS = [
    "429.mcf-ref",
    "stencil-default",
    "histo-large",
]


def extension_robustness(
    runner: GridRunner | None = None,
) -> ExtensionRobustnessResult:
    """Two related-work mechanisms the paper cites but does not evaluate.

    * Markov ([13]) covers *repeating* irregular sequences — mcf's tree
      walks — that no stride/delta/CBWS scheme predicts;
    * FDP ([30]) throttles the hybrid's aggressiveness by measured
      accuracy, trimming wrong prefetches on hostile workloads (histo)
      at a small cost on the showcases.
    """
    runner = runner or GridRunner()
    grid = runner.run_grid(
        EXTENSION_ROBUSTNESS_WORKLOADS,
        ["no-prefetch", "sms", "markov", "cbws+sms", "fdp(cbws+sms)"],
    )
    return ExtensionRobustnessResult(grid=grid)


# ---------------------------------------------------------------------------
# Extension — learned prefetchers (post-2014 related work)
# ---------------------------------------------------------------------------


#: The comparison set: the paper's CBWS schemes against the two learned
#: families, with no-prefetch as the speedup baseline.
EXTENSION_LEARNED_PREFETCHERS = [
    "no-prefetch",
    "cbws",
    "cbws+sms",
    "pangloss",
    "pythia",
]


@dataclass
class ExtensionLearnedResult:
    """Learned prefetchers (Pangloss, Pythia) against the CBWS schemes."""

    grid: ResultGrid

    def render(self) -> str:
        from repro.metrics.aggregate import geometric_mean

        prefetchers = EXTENSION_LEARNED_PREFETCHERS
        rows = []
        for workload in self.grid.workloads:
            rows.append([
                workload,
                *[self.grid.get(workload, p).ipc for p in prefetchers],
            ])
        speedups = ["geomean-speedup", 1.0]
        for p in prefetchers[1:]:
            speedups.append(geometric_mean([
                self.grid.get(w, p).ipc / self.grid.get(w, "no-prefetch").ipc
                for w in self.grid.workloads
            ]))
        rows.append(speedups)
        accuracy: list[object] = ["mean-accuracy", "-"]
        for p in prefetchers[1:]:
            values = [
                self.grid.get(w, p).accuracy for w in self.grid.workloads
            ]
            accuracy.append(sum(values) / len(values))
        rows.append(accuracy)
        return format_table(
            ["benchmark", *prefetchers], rows,
            title=(
                "Extension: learned prefetchers — Pangloss (Markov "
                "frequency) and Pythia (tabular RL) vs CBWS (IPC; last "
                "rows = geomean speedup over no-prefetch, mean accuracy)"
            ),
            float_format="{:.3f}",
        )


def extension_learned(runner: GridRunner | None = None) -> ExtensionLearnedResult:
    """Compare the learned family with CBWS over the full suite.

    Pangloss ([arXiv 1906.00877]) keeps per-page delta transitions with
    frequency-decayed counters; Pythia ([arXiv 2109.12021]) learns a
    prefetch-delta policy online from demand feedback.  Both are
    *loop-agnostic*: the interesting comparison is whether CBWS's
    explicit loop annotations still win on the paper's loop-heavy suite
    (stencil, sgemm) while the learned schemes close the gap on dense
    streaming (libquantum) and degrade more gracefully on pointer
    chasing (mcf), where their confidence/reward gates suppress issue.
    """
    runner = runner or GridRunner()
    grid = runner.run_grid(ALL_WORKLOADS, EXTENSION_LEARNED_PREFETCHERS)
    return ExtensionLearnedResult(grid=grid)
