"""Experiment harness.

Reproduces every table and figure of the paper's evaluation:

=============== ==========================================================
``figure1``     runtime fraction spent in tight loops
``table1``      CBWS construction + differential example (Figs 3/4, Tab I)
``figure5``     skew of the CBWS differential distribution
``table3``      prefetcher storage budgets
``figure12``    last-level-cache MPKI per prefetcher
``figure13``    timeliness / accuracy decomposition
``figure14``    IPC normalized to SMS, both benchmark groups
``figure15``    performance / cost (IPC per byte read)
``ablation_*``  design-choice sweeps (history depth, table size, vector
                capacity)
=============== ==========================================================

All experiments run on :data:`repro.sim.config.REDUCED_CONFIG` by default
and share one trace cache per process.
"""

from repro.harness.registry import (
    PAPER_PREFETCHER_ORDER,
    PREFETCHER_FACTORIES,
    make_prefetcher,
)
from repro.harness.runner import GridRunner, run_grid
from repro.harness.report import format_table, format_percent_table
from repro.harness.export import write_csv, write_json
from repro.harness import experiments

__all__ = [
    "PREFETCHER_FACTORIES",
    "PAPER_PREFETCHER_ORDER",
    "make_prefetcher",
    "GridRunner",
    "run_grid",
    "format_table",
    "format_percent_table",
    "write_json",
    "write_csv",
    "experiments",
]
