"""Worker-side task execution and pool lifecycle.

Task payloads are small frozen dataclasses (cheap to pickle); the heavy
artifacts move through the filesystem: a trace task *writes* its trace
to a content-addressed file, the dependent simulation tasks *read* it.
Each worker process keeps a tiny LRU of recently read traces so the
sims of one workload that land on the same worker pay the deserialize
cost once.

:class:`WorkerPool` wraps :class:`concurrent.futures.ProcessPoolExecutor`
with the two operations the scheduler's fault handling needs: detecting
a broken pool (a worker died mid-task) and force-restarting it (killing
any hung worker) so a poisoned task can never wedge the grid.

Failure injection (:class:`InjectSpec`) exists for the fault-tolerance
tests: a task can be made to raise, crash its worker, or hang for its
first N attempts, with the attempt count persisted in a side file so it
survives worker restarts.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_all_start_methods, get_context
from pathlib import Path
from typing import Callable

from repro.common.errors import ExecError, PermanentError
from repro.sim.config import SimConfig
from repro.sim.engine import simulate
from repro.sim.results import SimResult
from repro.trace.io import try_read_trace, write_trace
from repro.trace.stream import Trace
from repro.workloads.base import build_trace, get_workload

#: Per-worker-process cache of deserialized traces, keyed by file path
#: (paths are content-addressed, so a path's contents never change).
#: Bounded two ways: by entry count, and by estimated total bytes so a
#: grid of huge traces cannot OOM a worker that a grid of small traces
#: would sail through.
_TRACE_CACHE: "OrderedDict[str, Trace]" = OrderedDict()
_TRACE_CACHE_CAPACITY = 4

#: Total-bytes bound on the per-worker trace cache, tunable via
#: ``$REPRO_TRACE_CACHE_BYTES`` (default 256 MiB).  The most recently
#: used trace is always retained even when it alone exceeds the bound,
#: so repeated sims of one oversized workload still hit.
_TRACE_CACHE_MAX_BYTES = int(
    os.environ.get("REPRO_TRACE_CACHE_BYTES", str(256 * 1024 * 1024))
)

#: Rough per-event heap cost of a deserialized ``TraceEvent`` (a small
#: Python object plus list slot); used to estimate cache footprint
#: without walking every object graph.
_EVENT_NBYTES_ESTIMATE = 160


def trace_nbytes(trace: Trace) -> int:
    """Estimated heap footprint of one in-memory trace."""
    return 1024 + len(trace.events) * _EVENT_NBYTES_ESTIMATE


@dataclass(frozen=True)
class InjectSpec:
    """Test hook: misbehave on the first ``times`` attempts of a task.

    Attributes:
        mode: ``"raise"`` (raise :class:`ExecError`),
            ``"raise-permanent"`` (raise :class:`PermanentError`, which
            skips the retry budget), ``"crash"`` (hard-exit the worker
            process), or ``"hang"`` (sleep past the task timeout).  Only
            the raise modes are honoured on the in-process (jobs=1) path.
        times: number of initial attempts that misbehave.
        hang_seconds: sleep length for ``"hang"`` mode.
    """

    mode: str = "raise"
    times: int = 1_000_000
    hang_seconds: float = 30.0


@dataclass(frozen=True)
class TraceTaskPayload:
    """Build one workload trace and persist it at ``path``."""

    workload: str
    scale: float
    budget_fraction: float
    seed: int
    path: str


@dataclass(frozen=True)
class SimTaskPayload:
    """Simulate one grid cell against the trace at ``trace_path``."""

    workload: str
    prefetcher: str
    config: SimConfig
    trace_path: str
    inject: InjectSpec | None = None
    inject_counter_path: str | None = None


@dataclass(frozen=True)
class BatchTaskPayload:
    """Simulate one workload's cells as one batch over a shared trace.

    Fault injection is a per-cell facility; cells with an
    :class:`InjectSpec` never batch (the scheduler dispatches them as
    plain sim tasks instead), so the payload carries none.
    """

    workload: str
    prefetchers: tuple[str, ...]
    config: SimConfig
    trace_path: str


@dataclass
class TraceTaskOutcome:
    workload: str
    path: str
    events: int
    seconds: float
    disk_hit: bool
    rebuilt_corrupt: bool


@dataclass
class SimTaskOutcome:
    result: SimResult
    seconds: float


@dataclass
class BatchTaskOutcome:
    results: list[SimResult]  # positions match the payload's prefetchers
    seconds: float


def build_workload_trace(
    workload: str, scale: float, budget_fraction: float, seed: int
) -> Trace:
    """Build one trace exactly like ``GridRunner.trace`` does."""
    spec = get_workload(workload)
    budget = max(1000, int(spec.default_accesses * scale * budget_fraction))
    return build_trace(spec, scale=scale, max_accesses=budget, seed=seed)


def apply_injection(inject: InjectSpec | None,
                    counter_path: str | None) -> None:
    """Honour a test-injected fault for the current attempt, if any."""
    if inject is None:
        return
    attempts = 0
    counter = Path(counter_path) if counter_path else None
    if counter is not None and counter.exists():
        attempts = int(counter.read_text() or "0")
    if attempts >= inject.times:
        return
    if counter is not None:
        counter.write_text(str(attempts + 1))
    if inject.mode == "crash":
        os._exit(13)
    if inject.mode == "hang":
        time.sleep(inject.hang_seconds)
        return
    if inject.mode == "raise-permanent":
        raise PermanentError(
            f"injected permanent failure (attempt {attempts + 1} of "
            f"{inject.times})"
        )
    raise ExecError(
        f"injected failure (attempt {attempts + 1} of {inject.times})"
    )


def execute_trace_task(payload: TraceTaskPayload) -> TraceTaskOutcome:
    """Worker entry point: materialize one trace file."""
    started = time.perf_counter()
    path = Path(payload.path)
    disk_hit = False
    rebuilt_corrupt = False
    trace: Trace | None = None
    if path.exists():
        trace = try_read_trace(path)
        if trace is None:
            rebuilt_corrupt = True
            path.unlink(missing_ok=True)
        else:
            disk_hit = True
    if trace is None:
        trace = build_workload_trace(
            payload.workload, payload.scale, payload.budget_fraction,
            payload.seed,
        )
        path.parent.mkdir(parents=True, exist_ok=True)
        write_trace(trace, path)
    _remember_trace(str(path), trace)
    return TraceTaskOutcome(
        workload=payload.workload,
        path=str(path),
        events=len(trace.events),
        seconds=time.perf_counter() - started,
        disk_hit=disk_hit,
        rebuilt_corrupt=rebuilt_corrupt,
    )


def execute_sim_task(payload: SimTaskPayload) -> SimTaskOutcome:
    """Worker entry point: simulate one grid cell."""
    from repro.harness.registry import make_prefetcher

    apply_injection(payload.inject, payload.inject_counter_path)
    started = time.perf_counter()
    trace = _load_trace(payload.trace_path)
    result = simulate(payload.config, make_prefetcher(payload.prefetcher),
                      trace)
    result.prefetcher = payload.prefetcher
    return SimTaskOutcome(result=result,
                          seconds=time.perf_counter() - started)


def execute_batch_task(payload: BatchTaskPayload) -> BatchTaskOutcome:
    """Worker entry point: simulate one workload's cells as a batch."""
    from repro.sim.batch import BatchLane, BatchSimulationEngine

    started = time.perf_counter()
    trace = _load_trace(payload.trace_path)
    lanes = [BatchLane(prefetcher=name, config=payload.config)
             for name in payload.prefetchers]
    results = BatchSimulationEngine(lanes).run(trace)
    # The cell is keyed by the grid's (possibly parametrized) prefetcher
    # name, which the canonical engine-reported name must not replace —
    # exactly as execute_sim_task overrides it.
    for result, name in zip(results, payload.prefetchers):
        result.prefetcher = name
    return BatchTaskOutcome(results=results,
                            seconds=time.perf_counter() - started)


def _load_trace(path: str) -> Trace:
    cached = _TRACE_CACHE.get(path)
    if cached is not None:
        _TRACE_CACHE.move_to_end(path)
        return cached
    trace = try_read_trace(path)
    if trace is None:
        raise ExecError(f"trace file {path} is missing or corrupt")
    _remember_trace(path, trace)
    return trace


def _remember_trace(path: str, trace: Trace) -> None:
    _TRACE_CACHE[path] = trace
    _TRACE_CACHE.move_to_end(path)
    while len(_TRACE_CACHE) > _TRACE_CACHE_CAPACITY:
        _TRACE_CACHE.popitem(last=False)
    total = sum(trace_nbytes(cached) for cached in _TRACE_CACHE.values())
    while total > _TRACE_CACHE_MAX_BYTES and len(_TRACE_CACHE) > 1:
        _, evicted = _TRACE_CACHE.popitem(last=False)
        total -= trace_nbytes(evicted)


class WorkerPool:
    """A restartable process pool.

    The executor is created lazily and can be torn down and rebuilt at
    any point: :meth:`restart` terminates the worker processes (so a
    hung task dies with its worker) and drops every outstanding future —
    the scheduler owns resubmission.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ExecError("worker pool needs at least one job slot")
        self.jobs = jobs
        self._executor: ProcessPoolExecutor | None = None

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            # fork is markedly cheaper than spawn and the parent is
            # single-threaded at submission time; fall back to the
            # platform default where fork does not exist.
            context = (get_context("fork")
                       if "fork" in get_all_start_methods() else None)
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=context
            )
        return self._executor

    def submit(self, fn: Callable, payload: object) -> Future:
        return self._ensure().submit(fn, payload)

    def restart(self) -> None:
        """Kill the workers and start fresh (outstanding futures die)."""
        executor = self._executor
        self._executor = None
        if executor is None:
            return
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except (OSError, ValueError):  # already dead / closed
                pass
        executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    @staticmethod
    def is_pool_failure(error: BaseException) -> bool:
        """True when a future failed because its worker died."""
        return isinstance(error, BrokenProcessPool)
