"""Deterministic fault injection for the durability test-suite and CI.

The production failure paths (journal replay after a crash, checksum
verification, circuit-breaker degradation) only matter when things go
wrong, so this module makes things go wrong *on purpose* and *on
schedule*: each :class:`FaultSpec` names a site in the execution stack
and an occurrence index at which to fire, so a test or a CI job can say
"kill the run right after the third task completes" or "tear the fifth
journal append in half" and get exactly that, every time.

Sites are plain strings checked by the code that owns them:

``task-done``
    Checked by the scheduler after every completed task.
``journal.append``
    Checked (via :func:`mangle`) by :meth:`repro.exec.journal.RunJournal
    .append` around the write+fsync of one record — shared by grid runs,
    campaigns, and the serve job journal, so ``torn`` here reproduces a
    torn *serve* journal too.
``serve.admit``
    Checked by the broker at the top of every admission.
``serve.job-finished``
    Checked by the broker right after a job reaches a terminal state
    (``exit`` here is the canonical kill-shard chaos: the process dies
    mid-batch with journaled-but-unfinished jobs on the books).
``cluster.forward``
    Checked (via :func:`async_check`) by the cluster router before
    forwarding a request to its owning shard (``stall`` here is the
    slow-network chaos site).

Fault kinds:

``raise``            raise :class:`TransientError`
``raise-permanent``  raise :class:`PermanentError`
``crash``            raise :class:`InjectedCrash` (simulated process death)
``exit``             ``os._exit(70)`` — a *real* process death, for
                     subprocess-based tests and the CI smoke job
``torn``             (write sites only) persist the first half of the
                     payload, then die via :class:`InjectedCrash`
``stall``            sleep :data:`STALL_SECONDS` (override via
                     ``$REPRO_FAULT_STALL``) and then continue — a hung
                     shard or a slow network hop, depending on the site

Injectors install process-globally with :func:`install` /
:func:`deactivate`, or from the ``REPRO_FAULTS`` environment variable
(``site:kind@occurrence``, comma-separated) so a CLI subprocess can be
sabotaged without code changes.  With no injector installed every check
is a no-op.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.common.errors import (
    ExecError,
    FaultInjected,
    InjectedCrash,
    PermanentError,
    TransientError,
)

#: Exit code used by the ``exit`` fault kind, so harnesses can tell an
#: injected death from an organic one.
EXIT_CODE = 70

_KINDS = ("raise", "raise-permanent", "crash", "exit", "torn", "stall")


def stall_seconds() -> float:
    """How long a ``stall`` fault sleeps (default 600s — long enough
    that a health-probing supervisor declares the shard hung well before
    the stall clears; tests shrink it via ``$REPRO_FAULT_STALL``)."""
    try:
        return float(os.environ.get("REPRO_FAULT_STALL", "600"))
    except ValueError:
        return 600.0


#: Documented default for :func:`stall_seconds`.
STALL_SECONDS = 600.0

#: Environment variable holding a fault plan for subprocesses.
ENV_VAR = "REPRO_FAULTS"


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire ``times`` times starting at the
    ``at``-th hit (1-based) of ``site``."""

    site: str
    kind: str
    at: int = 1
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ExecError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.at < 1 or self.times < 1:
            raise ExecError("fault occurrence and count are 1-based")


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse one ``site:kind[@at[xtimes]]`` clause.

    Examples: ``task-done:exit@3``, ``journal.append:torn@2``,
    ``task-done:raise@1x4``.
    """
    head, _, occurrence = text.partition("@")
    site, separator, kind = head.rpartition(":")
    if not separator or not site or not kind:
        raise ExecError(f"malformed fault spec {text!r}; want site:kind[@N]")
    at, times = 1, 1
    if occurrence:
        count_text, x, times_text = occurrence.partition("x")
        try:
            at = int(count_text)
            times = int(times_text) if x else 1
        except ValueError:
            raise ExecError(
                f"malformed fault occurrence in {text!r}; want site:kind@NxM"
            ) from None
    return FaultSpec(site=site, kind=kind, at=at, times=times)


def parse_fault_plan(text: str) -> list[FaultSpec]:
    """Parse a comma-separated list of fault clauses."""
    return [
        parse_fault_spec(clause.strip())
        for clause in text.split(",")
        if clause.strip()
    ]


class FaultInjector:
    """Counts hits per site and fires the matching specs."""

    def __init__(self, specs: list[FaultSpec] | FaultSpec) -> None:
        if isinstance(specs, FaultSpec):
            specs = [specs]
        self.specs = list(specs)
        self.hits: dict[str, int] = {}
        self.fired: list[tuple[str, str, int]] = []

    def _firing(self, site: str) -> FaultSpec | None:
        count = self.hits.get(site, 0) + 1
        self.hits[site] = count
        for spec in self.specs:
            if spec.site == site and spec.at <= count < spec.at + spec.times:
                self.fired.append((site, spec.kind, count))
                return spec
        return None

    def check(self, site: str) -> None:
        """Record one hit of ``site``; raise/exit/stall if a spec fires."""
        spec = self._firing(site)
        if spec is None:
            return
        if spec.kind == "stall":
            import time

            time.sleep(stall_seconds())
            return
        if spec.kind == "exit":
            os._exit(EXIT_CODE)
        if spec.kind == "crash":
            raise InjectedCrash(f"injected crash at {site} (hit {self.hits[site]})")
        if spec.kind == "raise-permanent":
            raise PermanentError(f"injected permanent failure at {site}")
        if spec.kind == "torn":
            # A torn fault only makes sense on a write path; hitting it
            # through check() means the site passed no payload.
            raise InjectedCrash(f"injected torn write at {site}")
        raise TransientError(f"injected transient failure at {site}")

    async def async_check(self, site: str) -> None:
        """:meth:`check`, but a firing ``stall`` suspends only the
        current coroutine (``asyncio.sleep``) instead of blocking the
        whole event loop — a slow network hop, not a hung process."""
        spec = self._firing(site)
        if spec is None:
            return
        if spec.kind == "stall":
            import asyncio

            await asyncio.sleep(stall_seconds())
            return
        if spec.kind == "exit":
            os._exit(EXIT_CODE)
        if spec.kind == "crash":
            raise InjectedCrash(f"injected crash at {site} (hit {self.hits[site]})")
        if spec.kind == "raise-permanent":
            raise PermanentError(f"injected permanent failure at {site}")
        if spec.kind == "torn":
            raise InjectedCrash(f"injected torn write at {site}")
        raise TransientError(f"injected transient failure at {site}")

    def mangle(self, site: str, data: bytes) -> tuple[bytes, BaseException | None]:
        """Filter a payload about to be persisted at a write site.

        Returns the (possibly truncated) bytes to write and an exception
        the caller must raise *after* flushing them — the torn-write
        fault persists half a record and then 'dies', exactly like a
        power cut mid-append.
        """
        spec = self._firing(site)
        if spec is None:
            return data, None
        if spec.kind == "torn":
            return data[: max(1, len(data) // 2)], InjectedCrash(
                f"injected torn write at {site} (hit {self.hits[site]})"
            )
        if spec.kind == "exit":
            os._exit(EXIT_CODE)
        if spec.kind == "crash":
            return data, InjectedCrash(f"injected crash at {site}")
        if spec.kind == "raise-permanent":
            return data, PermanentError(f"injected permanent failure at {site}")
        return data, TransientError(f"injected transient failure at {site}")


#: The process-wide active injector (None disables all checks).
ACTIVE: FaultInjector | None = None


def install(specs: list[FaultSpec] | FaultSpec | FaultInjector) -> FaultInjector:
    """Activate fault injection process-wide; returns the injector."""
    global ACTIVE
    ACTIVE = specs if isinstance(specs, FaultInjector) else FaultInjector(specs)
    return ACTIVE


def deactivate() -> None:
    """Remove the active injector (every check becomes a no-op)."""
    global ACTIVE
    ACTIVE = None


def install_from_env(environ: dict[str, str] | None = None) -> FaultInjector | None:
    """Install an injector from ``$REPRO_FAULTS``, if set."""
    value = (environ if environ is not None else os.environ).get(ENV_VAR)
    if not value:
        return None
    return install(parse_fault_plan(value))


def check(site: str) -> None:
    """Hit ``site`` on the active injector; no-op when none installed."""
    if ACTIVE is not None:
        ACTIVE.check(site)


def mangle(site: str, data: bytes) -> tuple[bytes, BaseException | None]:
    """Filter a write through the active injector (no-op when none)."""
    if ACTIVE is None:
        return data, None
    return ACTIVE.mangle(site, data)


# ---------------------------------------------------------------------------
# Artifact corruption helpers (used by tests and nothing else)
# ---------------------------------------------------------------------------


def truncate_file(path: object, keep_fraction: float = 0.5) -> int:
    """Truncate a file to a fraction of its size; returns the new size."""
    data = open(path, "rb").read()
    keep = int(len(data) * keep_fraction)
    with open(path, "wb") as handle:
        handle.write(data[:keep])
    return keep


def bitflip_file(path: object, offset: int, bit: int = 0) -> None:
    """Flip one bit of the byte at ``offset`` (negative offsets ok)."""
    data = bytearray(open(path, "rb").read())
    data[offset] ^= 1 << (bit & 7)
    with open(path, "wb") as handle:
        handle.write(bytes(data))


__all__ = [
    "ACTIVE",
    "ENV_VAR",
    "EXIT_CODE",
    "FaultInjected",
    "FaultInjector",
    "FaultSpec",
    "InjectedCrash",
    "bitflip_file",
    "check",
    "deactivate",
    "install",
    "install_from_env",
    "mangle",
    "parse_fault_plan",
    "parse_fault_spec",
    "truncate_file",
]
