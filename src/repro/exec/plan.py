"""The grid task DAG.

A grid of C = W x P cells induces a two-level DAG: one
:class:`TraceNode` per workload (traces are identical for every
prefetcher, so they are built once) fanning out into one
:class:`SimNode` per (workload, prefetcher) cell.  The scheduler runs
trace nodes first and releases each workload's simulation nodes the
moment its trace lands — there is no global barrier between the levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exec.keys import sim_key, trace_filename, trace_key
from repro.sim.config import SimConfig


@dataclass(frozen=True)
class TraceNode:
    """One trace-build task: the root of a workload's fan-out."""

    workload: str
    scale: float
    budget_fraction: float
    seed: int

    @property
    def key(self) -> str:
        """Content key of the trace this node produces."""
        return trace_key(self.workload, self.scale, self.budget_fraction,
                         self.seed)

    @property
    def filename(self) -> str:
        """Stable on-disk name for the built trace."""
        return trace_filename(self.workload, self.scale,
                              self.budget_fraction, self.seed)

    @property
    def name(self) -> str:
        return f"trace:{self.workload}"


@dataclass(frozen=True)
class SimNode:
    """One simulation task; depends on its workload's :class:`TraceNode`."""

    trace: TraceNode
    prefetcher: str

    @property
    def workload(self) -> str:
        return self.trace.workload

    @property
    def cell(self) -> tuple[str, str]:
        """The (workload, prefetcher) grid coordinates."""
        return (self.trace.workload, self.prefetcher)

    def key(self, config: SimConfig) -> str:
        """Content key of the simulation result this node produces."""
        return sim_key(
            self.trace.workload,
            self.prefetcher,
            self.trace.scale,
            self.trace.budget_fraction,
            self.trace.seed,
            config,
        )

    @property
    def name(self) -> str:
        return f"sim:{self.trace.workload}:{self.prefetcher}"


class GridPlan:
    """The task DAG for a set of grid cells.

    Args:
        cells: (workload, prefetcher) pairs, in the order the final
            :class:`~repro.metrics.aggregate.ResultGrid` should list them.
        scale / budget_fraction / seed: trace-build parameters shared by
            every cell.
        config: the machine configuration (part of every sim cache key).
    """

    def __init__(
        self,
        cells: Iterable[tuple[str, str]],
        scale: float,
        budget_fraction: float,
        seed: int,
        config: SimConfig,
    ) -> None:
        self.config = config
        self.trace_nodes: dict[str, TraceNode] = {}
        self.sim_nodes: list[SimNode] = []
        for workload, prefetcher in cells:
            node = self.trace_nodes.get(workload)
            if node is None:
                node = TraceNode(workload, scale, budget_fraction, seed)
                self.trace_nodes[workload] = node
            self.sim_nodes.append(SimNode(node, prefetcher))

    @classmethod
    def from_grid(
        cls,
        workloads: Sequence[str],
        prefetchers: Sequence[str],
        scale: float,
        budget_fraction: float,
        seed: int,
        config: SimConfig,
    ) -> "GridPlan":
        """The full workload-major grid, matching the serial loop order."""
        cells = [(w, p) for w in workloads for p in prefetchers]
        return cls(cells, scale, budget_fraction, seed, config)

    def dependents(self, workload: str) -> list[SimNode]:
        """All simulation nodes fanning out of one workload's trace."""
        return [node for node in self.sim_nodes if node.workload == workload]

    def __len__(self) -> int:
        return len(self.sim_nodes)
