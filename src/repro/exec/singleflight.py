"""Single-flight deduplication of identical in-flight work.

A :class:`SingleFlight` registry maps a content-addressed key (e.g.
:func:`repro.exec.keys.sim_key`) to whatever object represents the work
in flight for that key.  The first caller to :meth:`lease` a key becomes
its *leader* and owns execution; every later caller for the same key is
a *follower* and receives the leader's in-flight object instead of
spawning duplicate work.  When the leader finishes it releases the key
(:meth:`release`), after which a new lease starts fresh work (a completed result
should by then be in the result cache, so the fresh leader is usually a
pure cache read).

The registry is thread-safe — the serve broker leases from its event
loop while CLI helpers may probe from other threads — and deliberately
value-agnostic: it stores whatever the caller's factory returns (a job
object, a future, ...) and never inspects it.
"""

from __future__ import annotations

import threading
from typing import Callable, Generic, TypeVar

T = TypeVar("T")


class SingleFlight(Generic[T]):
    """Key -> in-flight-work registry with hit accounting."""

    def __init__(self) -> None:
        self._inflight: dict[str, T] = {}
        self._lock = threading.Lock()
        #: Leases that attached to an existing leader.
        self.hits = 0
        #: Leases that created a new leader.
        self.leaders = 0

    def lease(self, key: str, factory: Callable[[], T]) -> tuple[T, bool]:
        """Join or start the in-flight work for ``key``.

        Returns ``(work, is_leader)``: ``is_leader`` is True when this
        call created the work via ``factory`` (and must eventually call
        :meth:`release`), False when it attached to an existing leader.
        """
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                self.hits += 1
                return existing, False
            work = factory()
            self._inflight[key] = work
            self.leaders += 1
            return work, True

    def peek(self, key: str) -> T | None:
        """The in-flight work for ``key``, without joining it."""
        with self._lock:
            return self._inflight.get(key)

    def release(self, key: str) -> None:
        """Retire ``key``; the next lease starts fresh work."""
        with self._lock:
            self._inflight.pop(key, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._inflight)
