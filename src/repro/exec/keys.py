"""Stable content-addressed keys for grid tasks and cached artifacts.

Cache keys must be identical across processes and Python invocations, so
they cannot use ``hash()`` (randomized per process) or raw float ``repr``
embedded in filenames (``0.1 + 0.2`` prints as ``0.30000000000000004``
and ``1.0`` vs ``1`` collide or diverge depending on the caller).  Keys
here are SHA-256 digests of a canonical JSON encoding:

* floats encode as their exact ``float.hex()`` form — equal floats
  always produce equal keys, unequal floats never collide;
* dataclasses (e.g. :class:`repro.sim.config.SimConfig`) encode as their
  class name plus every field, recursively;
* mappings are sorted; enums encode as their value.

Every key mixes in :data:`CODE_VERSION` (bump it whenever simulation
semantics change so stale cached results are never replayed) and, for
simulation results, the :data:`repro.sim.results.RESULT_SCHEMA_VERSION`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from enum import Enum
from typing import Any

#: Salt mixed into every key.  Bump when a change anywhere in the
#: trace-generation or simulation pipeline alters results, so previously
#: cached artifacts are invalidated wholesale.
CODE_VERSION = 1


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to JSON-encodable primitives, deterministically."""
    if value is None or isinstance(value, (str, bool, int)):
        return value
    if isinstance(value, float):
        return {"__float__": value.hex()}
    if isinstance(value, Enum):
        return {"__enum__": type(value).__name__, "value": canonicalize(value.value)}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": {
                field.name: canonicalize(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        items = [
            [canonicalize(key), canonicalize(item)]
            for key, item in value.items()
        ]
        items.sort(key=lambda pair: json.dumps(pair[0], sort_keys=True))
        return {"__map__": items}
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        members = [canonicalize(item) for item in value]
        members.sort(key=lambda member: json.dumps(member, sort_keys=True))
        return {"__set__": members}
    raise TypeError(
        f"cannot build a stable key from {type(value).__name__!r} values"
    )


def stable_hash(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of ``parts``."""
    payload = json.dumps(
        [canonicalize(part) for part in parts],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def short_digest(*parts: Any, length: int = 12) -> str:
    """Filename-sized prefix of :func:`stable_hash`."""
    return stable_hash(*parts)[:length]


def _ext_salt(workload: str) -> list[str]:
    """Extra key material for ``ext:`` workloads: their content digest.

    A synthetic workload's name fully determines its trace (given
    scale/seed), but an ``ext:`` name is a mutable registry pointer —
    re-ingesting different content under the same name with ``--force``
    changes what the name means.  Mixing the stored digest in makes
    every trace/sim key follow the content, so stale cached results can
    never be replayed against new bytes.  Non-``ext:`` keys get no salt
    and are byte-identical to before.
    """
    if not workload.startswith("ext:"):
        return []
    from repro.ingest.store import IngestStore

    return [IngestStore().digest(workload)]


def trace_key(
    workload: str, scale: float, budget_fraction: float, seed: int
) -> str:
    """Content key of one workload trace build."""
    return stable_hash(
        "trace", CODE_VERSION, workload, scale, budget_fraction, seed,
        *_ext_salt(workload),
    )


def trace_filename(
    workload: str, scale: float, budget_fraction: float, seed: int
) -> str:
    """On-disk name for a cached trace: readable prefix + stable digest."""
    safe = workload.replace("/", "_").replace(":", "_")
    digest = trace_key(workload, scale, budget_fraction, seed)[:12]
    return f"{safe}-{digest}.trace"


def sim_key(
    workload: str,
    prefetcher: str,
    scale: float,
    budget_fraction: float,
    seed: int,
    config: Any,
) -> str:
    """Content key of one (workload, prefetcher) simulation result."""
    from repro.sim.results import RESULT_SCHEMA_VERSION

    return stable_hash(
        "sim",
        CODE_VERSION,
        RESULT_SCHEMA_VERSION,
        workload,
        prefetcher,
        scale,
        budget_fraction,
        seed,
        config,
        *_ext_salt(workload),
    )
