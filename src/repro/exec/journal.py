"""Write-ahead run journal: crash-safe record of one grid execution.

Long sweeps die — a worker OOMs, the machine reboots, someone hits ^C —
and without a durable record the whole campaign restarts from zero.  The
journal fixes that: before any work runs, the *intent* (the full cell
list and its content fingerprint) is committed to an append-only JSONL
file, and every task outcome (done / quarantined / workload degraded) is
appended behind it with an fsync.  ``repro run --resume <run-id>``
replays the journal, re-attaches completed cells through the result
cache, carries forward quarantine and degradation decisions, and
executes only the remainder.

Line format — one record per line, self-checking::

    <crc32 hex> <canonical JSON payload>\n

The CRC makes torn writes detectable: a crash mid-append leaves a final
line whose checksum (or JSON) does not verify, and :func:`replay` stops
at the first such line, treating everything before it as the durable
truth.  Appends are atomic-enough by construction: a record is only
trusted once its full line round-trips.

Record kinds: ``run-started`` (intent: cells + fingerprint + params),
``run-resumed``, ``task-done``, ``task-quarantined``,
``workload-degraded``, ``run-finished``.
"""

from __future__ import annotations

import json
import os
import time
import uuid
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.common.errors import JournalError, raise_if_disk_full
from repro.exec import faults
from repro.exec.keys import stable_hash

#: Version of the journal record layout, stamped into every
#: ``run-started`` record; replay refuses newer layouts.
JOURNAL_SCHEMA_VERSION = 1

#: Subdirectory of the cache dir holding one directory per run.
RUNS_DIRNAME = "runs"


def run_fingerprint(
    cells: Iterable[tuple[str, str]],
    scale: float,
    budget_fraction: float,
    seed: int,
    config: Any,
) -> str:
    """Content fingerprint of one grid request.

    Two runs with the same fingerprint would execute identical work, so
    a resume is only legal when fingerprints match — resuming a 30%
    -budget journal into a full-budget sweep must fail loudly, not
    silently mix results.
    """
    return stable_hash(
        "run", sorted(cells), scale, budget_fraction, seed, config
    )


def new_run_id() -> str:
    """A sortable, collision-resistant run identifier."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"{stamp}-{uuid.uuid4().hex[:6]}"


def _encode(record: dict[str, Any]) -> bytes:
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    crc = format(zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF, "08x")
    return f"{crc} {payload}\n".encode("utf-8")


def _decode(line: str) -> dict[str, Any] | None:
    """One record, or None for a torn/corrupt line."""
    crc_text, separator, payload = line.rstrip("\n").partition(" ")
    if not separator or len(crc_text) != 8:
        return None
    try:
        expected = int(crc_text, 16)
    except ValueError:
        return None
    if zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF != expected:
        return None
    try:
        record = json.loads(payload)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


def read_records(path: str | Path) -> tuple[list[dict[str, Any]], int]:
    """Every trusted record of one journal, plus the torn-line count.

    Shared by grid-run replay and the campaign engine's own journal:
    records are trusted up to the first line that fails its CRC or JSON
    check; everything from that point on was mid-write when the process
    died and is discarded.  Unreadable files raise
    :class:`JournalError` (missing file included).
    """
    path = Path(path)
    try:
        lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
    except FileNotFoundError:
        raise JournalError(f"no run journal at {path}") from None
    except OSError as error:
        raise JournalError(f"cannot read journal {path}: {error}") from None
    records: list[dict[str, Any]] = []
    torn = 0
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        record = _decode(line)
        if record is None:
            torn = len(lines) - index
            break
        records.append(record)
    return records, torn


class RunJournal:
    """Append-only, fsync'd journal of one run's task outcomes."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = None
        self._sequence = 0

    @classmethod
    def for_run(cls, runs_root: str | Path, run_id: str) -> "RunJournal":
        """The journal of ``run_id`` under ``<runs_root>/<run_id>/``."""
        return cls(Path(runs_root) / run_id / "journal.jsonl")

    def append(self, kind: str, **fields: Any) -> None:
        """Durably append one record (write + flush + fsync).

        The fault-injection site ``journal.append`` can tear this write
        in half: the truncated bytes are flushed first and the injected
        crash raised after, reproducing a mid-append power cut.

        A full disk (``ENOSPC``/``EDQUOT``) escalates to
        :class:`~repro.common.errors.DiskFullError` — retrying an
        append against a full filesystem is a retry storm, not recovery.
        """
        self._sequence += 1
        record = {"kind": kind, "seq": self._sequence, "t": time.time()}
        record.update(fields)
        data, post_error = faults.mangle("journal.append", _encode(record))
        try:
            if self._handle is None:
                self._handle = open(self.path, "ab")
            self._handle.write(data)
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError as error:
            self.close()
            raise_if_disk_full(error, f"journal record in {self.path.name}")
            raise
        if post_error is not None:
            self.close()
            raise post_error

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- convenience writers -------------------------------------------------

    def run_started(
        self,
        run_id: str,
        fingerprint: str,
        cells: Iterable[tuple[str, str]],
        **params: Any,
    ) -> None:
        self.append(
            "run-started",
            schema=JOURNAL_SCHEMA_VERSION,
            run_id=run_id,
            fingerprint=fingerprint,
            cells=[list(cell) for cell in cells],
            **params,
        )

    def task_done(self, name: str, kind: str,
                  cell: tuple[str, str] | None = None,
                  key: str | None = None, source: str = "run") -> None:
        self.append("task-done", task=name, task_kind=kind,
                    cell=list(cell) if cell else None, key=key, source=source)

    def task_quarantined(self, name: str, kind: str, reason: str,
                         attempts: int, classification: str,
                         cell: tuple[str, str] | None = None) -> None:
        self.append("task-quarantined", task=name, task_kind=kind,
                    reason=reason, attempts=attempts,
                    classification=classification,
                    cell=list(cell) if cell else None)

    def workload_degraded(self, workload: str, reason: str,
                          failures: int) -> None:
        self.append("workload-degraded", workload=workload, reason=reason,
                    failures=failures)

    def run_finished(self, status: str, **counts: Any) -> None:
        self.append("run-finished", status=status, **counts)


@dataclass
class RunReplay:
    """Everything :func:`replay` can reconstruct from one journal."""

    path: Path
    run_id: str | None = None
    fingerprint: str | None = None
    cells: list[tuple[str, str]] = field(default_factory=list)
    #: Completed simulation cells mapped to their result-cache keys.
    completed: dict[tuple[str, str], str | None] = field(default_factory=dict)
    #: Completed trace builds (workload names).
    traces_done: set[str] = field(default_factory=set)
    quarantined: list[dict[str, Any]] = field(default_factory=list)
    degraded: dict[str, str] = field(default_factory=dict)
    status: str | None = None
    records: int = 0
    torn_lines: int = 0
    resumes: int = 0
    started_at: float | None = None
    params: dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.status is not None

    @property
    def quarantined_cells(self) -> set[tuple[str, str]]:
        return {
            tuple(entry["cell"])
            for entry in self.quarantined
            if entry.get("cell")
        }

    def describe_status(self) -> str:
        """Human status: complete / degraded / interrupted."""
        if self.status is not None:
            return self.status
        return "interrupted"


def replay(path: str | Path) -> RunReplay:
    """Reconstruct run state from a journal, tolerating a torn tail.

    Records are trusted up to the first line that fails its CRC or JSON
    check; everything at or after that point was mid-write when the
    process died and is discarded (and counted in ``torn_lines``).
    """
    path = Path(path)
    state = RunReplay(path=path)
    records, state.torn_lines = read_records(path)

    for record in records:
        state.records += 1
        kind = record.get("kind")
        if kind == "run-started":
            schema = record.get("schema", 0)
            if schema > JOURNAL_SCHEMA_VERSION:
                raise JournalError(
                    f"journal {path} uses schema {schema}, newer than "
                    f"this build ({JOURNAL_SCHEMA_VERSION})"
                )
            state.run_id = record.get("run_id")
            state.fingerprint = record.get("fingerprint")
            state.cells = [tuple(cell) for cell in record.get("cells", [])]
            state.started_at = record.get("t")
            state.params = {
                key: value for key, value in record.items()
                if key not in ("kind", "seq", "t", "schema", "run_id",
                               "fingerprint", "cells")
            }
            state.status = None  # a restart reopens the run
        elif kind == "run-resumed":
            state.resumes += 1
            state.status = None
        elif kind == "task-done":
            if record.get("cell"):
                state.completed[tuple(record["cell"])] = record.get("key")
            elif record.get("task_kind") == "trace":
                state.traces_done.add(
                    str(record.get("task", "")).split(":", 1)[-1]
                )
        elif kind == "task-quarantined":
            state.quarantined.append(record)
        elif kind == "workload-degraded":
            state.degraded[record["workload"]] = record.get("reason", "")
        elif kind == "run-finished":
            state.status = record.get("status")
    return state


@dataclass
class RunSummary:
    """One row of ``repro runs list``."""

    run_id: str
    status: str
    cells_done: int
    cells_total: int
    degraded: int
    quarantined: int
    torn_lines: int
    started_at: float | None


def list_runs(
    runs_root: str | Path,
    on_skip: "Callable[[str, str], None] | None" = None,
) -> list[RunSummary]:
    """Summaries of every journaled run under ``runs_root``, newest first.

    A corrupt, unreadable, or empty journal directory is *skipped*, not
    fatal — one damaged run must never hide every other run from
    ``repro runs list``.  Each skip is reported through ``on_skip(name,
    reason)`` when supplied (the CLI prints a warning per skipped
    directory).
    """
    root = Path(runs_root)
    summaries: list[RunSummary] = []
    if not root.is_dir():
        return summaries

    def skip(entry: Path, reason: str) -> None:
        if on_skip is not None:
            on_skip(entry.name, reason)

    for entry in sorted(root.iterdir()):
        if not entry.is_dir():
            continue
        journal_path = entry / "journal.jsonl"
        if not journal_path.is_file():
            skip(entry, "no journal.jsonl")
            continue
        try:
            state = replay(journal_path)
        except JournalError as error:
            skip(entry, str(error))
            continue
        if state.records == 0:
            skip(entry, "journal is empty or wholly corrupt")
            continue
        summaries.append(RunSummary(
            run_id=state.run_id or entry.name,
            status=state.describe_status(),
            cells_done=len(state.completed),
            cells_total=len(state.cells),
            degraded=len(state.degraded),
            quarantined=len(state.quarantined),
            torn_lines=state.torn_lines,
            started_at=state.started_at,
        ))
    summaries.sort(key=lambda s: s.started_at or 0.0, reverse=True)
    return summaries


def load_run(runs_root: str | Path, run_id: str) -> RunReplay:
    """Replay one run by id; raises :class:`JournalError` if absent."""
    path = Path(runs_root) / run_id / "journal.jsonl"
    if not path.is_file():
        known = ", ".join(s.run_id for s in list_runs(runs_root)) or "none"
        raise JournalError(
            f"no journal for run {run_id!r} under {runs_root} "
            f"(known runs: {known})"
        )
    return replay(path)
