"""Content-addressed on-disk result cache.

Simulation results are tiny (a few hundred bytes of counters) while the
work producing them is expensive, so the cache stores one JSON document
per :func:`repro.exec.keys.sim_key` under a two-level fan-out directory
(``<root>/<key[:2]>/<key>.json``).  Keys encode every input that can
change the result — workload spec parameters, SimConfig fields,
prefetcher name, schema and code versions — so a hit is always safe to
replay and a re-run of any figure with unchanged inputs is a pure cache
read.

Entry integrity: every document carries a schema version and a SHA-256
checksum of its canonical result payload.  ``get`` verifies both before
deserializing — a bit-flipped, truncated, or stale-schema entry is
*demoted to a miss* (logged, deleted, rebuilt by the caller) instead of
crashing the run or, worse, silently poisoning it.  Writes are atomic
and durable (temp file + fsync + ``os.replace``) so a crashed or
concurrent writer can never leave a half-written entry.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import ReproError, raise_if_disk_full
from repro.sim.results import SimResult

logger = logging.getLogger("repro.exec")

#: Version of the cache *envelope* (schema + checksum + result layout).
#: Bump whenever the document shape changes; older entries are then
#: treated as misses and deleted rather than deserialized.
CACHE_SCHEMA_VERSION = 2


def _result_checksum(result_payload: dict) -> str:
    canonical = json.dumps(result_payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class GcStats:
    """What one :meth:`ResultCache.gc` pass scanned and evicted."""

    scanned: int = 0
    evicted: int = 0
    kept: int = 0
    bytes_total: int = 0
    bytes_reclaimed: int = 0
    evicted_by_age: int = 0
    evicted_by_size: int = 0
    dry_run: bool = False

    def evict(self, size: int, path: Path, reason: str,
              dry_run: bool) -> None:
        """Record (and, unless dry-run, perform) one eviction."""
        self.evicted += 1
        self.bytes_reclaimed += size
        if reason == "age":
            self.evicted_by_age += 1
        else:
            self.evicted_by_size += 1
        self.dry_run = dry_run
        if not dry_run:
            path.unlink(missing_ok=True)

    @property
    def bytes_after(self) -> int:
        return self.bytes_total - self.bytes_reclaimed


class ResultCache:
    """A directory of content-addressed simulation results."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self.root / key[:2] / f"{key}.json"

    def _verify_document(self, document: object) -> SimResult:
        """Deserialize one envelope, raising :class:`ReproError` variants
        on any schema or integrity violation."""
        if not isinstance(document, dict):
            raise ReproError("cache entry is not a JSON object")
        schema = document.get("schema")
        if schema != CACHE_SCHEMA_VERSION:
            raise ReproError(
                f"cache entry schema {schema!r} does not match "
                f"version {CACHE_SCHEMA_VERSION}"
            )
        payload = document["result"]
        recorded = document.get("checksum")
        actual = _result_checksum(payload)
        if recorded != actual:
            raise ReproError(
                f"cache entry checksum mismatch (recorded {recorded!r}, "
                f"actual {actual!r})"
            )
        return SimResult.from_dict(payload)

    def get(self, key: str) -> SimResult | None:
        """The cached result, or None on a miss.

        A corrupt, checksum-failing, or stale-schema entry counts as a
        miss and is deleted so the slot is rebuilt cleanly.
        """
        path = self.path_for(key)
        try:
            document = json.loads(path.read_text())
            return self._verify_document(document)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError, ReproError) as error:
            logger.warning(
                "discarding unusable result-cache entry %s: %s", path, error
            )
            path.unlink(missing_ok=True)
            return None

    def put(self, key: str, result: SimResult) -> None:
        """Store one result atomically and durably.

        A full disk (``ENOSPC``/``EDQUOT``) is escalated to
        :class:`~repro.common.errors.DiskFullError` — a *permanent*
        environment failure, so the retry policy fails fast with a
        ``repro cache gc`` remediation hint instead of hammering the
        same full filesystem.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = result.to_dict()
        document = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "checksum": _result_checksum(payload),
            "result": payload,
        }
        temporary = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            with open(temporary, "w") as handle:
                handle.write(json.dumps(document, sort_keys=True))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temporary, path)
        except OSError as error:
            raise_if_disk_full(error, f"result-cache entry {key[:12]}…")
            raise
        finally:
            temporary.unlink(missing_ok=True)

    def contains(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> None:
        """Delete every entry (the fan-out directories stay)."""
        for entry in self.root.glob("*/*.json"):
            entry.unlink(missing_ok=True)

    def gc(
        self,
        max_bytes: int | None = None,
        max_age_seconds: float | None = None,
        *,
        now: float | None = None,
        dry_run: bool = False,
    ) -> "GcStats":
        """Bound the cache by size and/or age, evicting oldest-first.

        Campaigns grow the cache without limit (every unique cell is one
        entry forever); ``repro cache gc`` keeps it bounded.  Policy:

        * entries older than ``max_age_seconds`` (by mtime) are evicted;
        * if the surviving total still exceeds ``max_bytes``, the oldest
          entries are evicted until it fits.

        Eviction is safe by construction — every entry is a pure
        function of its key, so a future miss simply recomputes.
        ``dry_run`` reports what *would* be evicted without deleting.
        Returns :class:`GcStats`; with no bounds given, nothing is
        evicted and the stats are a pure census.
        """
        import time as time_module

        clock = time_module.time() if now is None else now
        entries: list[tuple[float, int, Path]] = []
        for path in self.root.glob("*/*.json"):
            try:
                status = path.stat()
            except OSError:
                continue  # raced with a concurrent eviction
            entries.append((status.st_mtime, status.st_size, path))
        entries.sort(key=lambda entry: (entry[0], entry[2].name))

        stats = GcStats(scanned=len(entries),
                        bytes_total=sum(size for _, size, _ in entries))
        survivors: list[tuple[float, int, Path]] = []
        for mtime, size, path in entries:
            if (max_age_seconds is not None
                    and clock - mtime > max_age_seconds):
                stats.evict(size, path, reason="age", dry_run=dry_run)
            else:
                survivors.append((mtime, size, path))
        if max_bytes is not None:
            remaining = sum(size for _, size, _ in survivors)
            for mtime, size, path in survivors:
                if remaining <= max_bytes:
                    break
                stats.evict(size, path, reason="size", dry_run=dry_run)
                remaining -= size
        stats.kept = stats.scanned - stats.evicted
        return stats

    def verify(self) -> tuple[int, list[tuple[Path, str]]]:
        """Integrity-check every entry without deleting anything.

        Returns ``(ok_count, [(path, reason), ...])`` for the entries
        that fail schema or checksum verification.
        """
        ok = 0
        corrupt: list[tuple[Path, str]] = []
        for entry in sorted(self.root.glob("*/*.json")):
            try:
                document = json.loads(entry.read_text())
                result = self._verify_document(document)
                expected_key = document.get("key")
                if expected_key != entry.stem:
                    raise ReproError(
                        f"entry key {expected_key!r} does not match its "
                        f"filename {entry.stem!r}"
                    )
                del result
                ok += 1
            except (OSError, ValueError, KeyError, TypeError,
                    ReproError) as error:
                corrupt.append((entry, str(error)))
        return ok, corrupt
