"""Content-addressed on-disk result cache.

Simulation results are tiny (a few hundred bytes of counters) while the
work producing them is expensive, so the cache stores one JSON document
per :func:`repro.exec.keys.sim_key` under a two-level fan-out directory
(``<root>/<key[:2]>/<key>.json``).  Keys encode every input that can
change the result — workload spec parameters, SimConfig fields,
prefetcher name, schema and code versions — so a hit is always safe to
replay and a re-run of any figure with unchanged inputs is a pure cache
read.

Writes are atomic (temp file + ``os.replace``) so a crashed or
concurrent writer can never leave a half-written entry; unreadable or
schema-mismatched entries are treated as misses and deleted.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.common.errors import ReproError
from repro.sim.results import SimResult


class ResultCache:
    """A directory of content-addressed simulation results."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> SimResult | None:
        """The cached result, or None on a miss.

        A corrupt or stale-schema entry counts as a miss and is deleted
        so the slot is rebuilt cleanly.
        """
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
            return SimResult.from_dict(payload["result"])
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError, ReproError):
            path.unlink(missing_ok=True)
            return None

    def put(self, key: str, result: SimResult) -> None:
        """Store one result atomically."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {"key": key, "result": result.to_dict()}
        temporary = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        temporary.write_text(json.dumps(document, sort_keys=True))
        os.replace(temporary, path)

    def contains(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> None:
        """Delete every entry (the fan-out directories stay)."""
        for entry in self.root.glob("*/*.json"):
            entry.unlink(missing_ok=True)
