"""DAG orchestration: cache probe, fan-out, retries, quarantine.

:func:`execute_grid` drives a :class:`~repro.exec.plan.GridPlan` to
completion:

1. every simulation node is probed against the result cache — hits are
   returned without scheduling any work;
2. the remaining cells group by workload; each workload's trace-build
   task is dispatched to the worker pool, and its simulation tasks are
   released the moment the trace lands (no barrier between workloads);
3. every task attempt is wrapped with an optional timeout, bounded retry
   with exponential backoff, and worker-crash recovery.  A task that
   exhausts its retries is *quarantined* — recorded in telemetry and
   skipped — so one poisoned cell can never hang or abort the rest of
   the grid.  Quarantining a trace task quarantines its dependent sims.

``jobs=1`` runs everything in-process (no pool, no pickling) through the
same cache/telemetry bookkeeping, so serial runs stay bit-identical to
the historical path while still benefiting from the result cache.
"""

from __future__ import annotations

import os
import tempfile
import time
from concurrent.futures import CancelledError, FIRST_COMPLETED, Future, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping

from repro.common.errors import ExecError
from repro.exec import telemetry as telemetry_module
from repro.exec.cache import ResultCache
from repro.exec.keys import short_digest
from repro.exec.plan import GridPlan, SimNode
from repro.exec.pool import (
    InjectSpec,
    SimTaskPayload,
    TraceTaskPayload,
    WorkerPool,
    build_workload_trace,
    execute_sim_task,
    execute_trace_task,
)
from repro.exec.telemetry import ExecTelemetry
from repro.sim.engine import simulate
from repro.sim.results import SimResult
from repro.trace.stream import Trace

#: Progress callback signature: (workload, prefetcher) per finished cell.
Progress = Callable[[str, str], None]


@dataclass
class ExecOptions:
    """Execution policy knobs.

    Attributes:
        jobs: worker processes; None means ``os.cpu_count()``; 1 runs
            in-process.
        timeout: per-task wall-clock limit in seconds (pool mode only —
            an in-process task cannot be interrupted).  None disables.
        max_retries: failed attempts beyond the first before a task is
            quarantined (so a task runs at most ``1 + max_retries`` times).
        retry_backoff: base sleep before a retry; doubles per attempt.
    """

    jobs: int | None = None
    timeout: float | None = None
    max_retries: int = 2
    retry_backoff: float = 0.05

    def effective_jobs(self) -> int:
        if self.jobs is None:
            return os.cpu_count() or 1
        return max(1, self.jobs)


def execute_grid(
    plan: GridPlan,
    *,
    options: ExecOptions | None = None,
    cache: ResultCache | None = None,
    trace_dir: str | Path | None = None,
    trace_provider: Callable[[str], Trace] | None = None,
    inject: Mapping[tuple[str, str], InjectSpec] | None = None,
    progress: Progress | None = None,
    stats_path: str | Path | None = None,
    telemetry: ExecTelemetry | None = None,
) -> tuple[dict[tuple[str, str], SimResult], ExecTelemetry]:
    """Execute a grid plan; returns (results by cell, telemetry).

    Quarantined cells are *absent* from the result mapping and listed in
    ``telemetry.quarantined`` — the caller decides whether that is fatal.

    Args:
        cache: result cache; probed before scheduling, filled after.
        trace_dir: where built traces are persisted for workers to read
            (a private temporary directory is used when omitted).
        trace_provider: in-process trace source used on the serial path
            (``GridRunner.trace``), so serial runs share the caller's
            trace caches.
        inject: test-only fault injection per (workload, prefetcher).
        stats_path: where to persist the telemetry JSON snapshot.
    """
    options = options or ExecOptions()
    jobs = options.effective_jobs()
    if telemetry is None:
        telemetry = ExecTelemetry()
    telemetry.jobs = jobs

    results: dict[tuple[str, str], SimResult] = {}
    misses: list[SimNode] = []
    for node in plan.sim_nodes:
        if cache is not None:
            hit = cache.get(node.key(plan.config))
            if hit is not None:
                telemetry.cache_hits += 1
                results[node.cell] = hit
                if progress is not None:
                    progress(*node.cell)
                continue
            telemetry.cache_misses += 1
        misses.append(node)

    try:
        if misses:
            if jobs <= 1:
                _run_serial(plan, misses, results, cache, telemetry,
                            trace_provider, dict(inject or {}), options,
                            progress)
            else:
                _run_pool(plan, misses, results, cache, telemetry,
                          trace_dir, dict(inject or {}), options, progress,
                          jobs)
    finally:
        telemetry.finish()
        telemetry_module.LAST_RUN = telemetry
        if stats_path is not None:
            telemetry.persist(stats_path)
    return results, telemetry


def _group_by_workload(nodes: list[SimNode]) -> dict[str, list[SimNode]]:
    groups: dict[str, list[SimNode]] = {}
    for node in nodes:
        groups.setdefault(node.workload, []).append(node)
    return groups


# ---------------------------------------------------------------------------
# Serial (jobs=1) path
# ---------------------------------------------------------------------------


def _run_serial(
    plan: GridPlan,
    misses: list[SimNode],
    results: dict[tuple[str, str], SimResult],
    cache: ResultCache | None,
    telemetry: ExecTelemetry,
    trace_provider: Callable[[str], Trace] | None,
    inject: dict[tuple[str, str], InjectSpec],
    options: ExecOptions,
    progress: Progress | None,
) -> None:
    from repro.harness.registry import make_prefetcher

    groups = _group_by_workload(misses)
    telemetry.task_queued(len(groups) + len(misses))
    for workload, nodes in groups.items():
        trace_node = plan.trace_nodes[workload]
        telemetry.task_started()
        started = time.perf_counter()
        try:
            if trace_provider is not None:
                trace = trace_provider(workload)
            else:
                trace = build_workload_trace(
                    workload, trace_node.scale, trace_node.budget_fraction,
                    trace_node.seed,
                )
        except Exception as error:
            telemetry.task_failed_attempt()
            telemetry.quarantine(trace_node.name, "trace", str(error), 1)
            for node in nodes:
                telemetry.tasks_queued = max(0, telemetry.tasks_queued - 1)
                telemetry.quarantine(
                    node.name, "sim",
                    f"trace build for {workload} was quarantined", 0,
                )
            continue
        telemetry.traces_built += 1
        telemetry.task_finished(trace_node.name, "trace",
                                time.perf_counter() - started, 1)

        for node in nodes:
            spec = inject.get(node.cell)
            attempts = 0
            while True:
                telemetry.task_started()
                started = time.perf_counter()
                try:
                    if spec is not None and attempts < spec.times:
                        raise ExecError(
                            f"injected failure (attempt {attempts + 1} of "
                            f"{spec.times})"
                        )
                    result = simulate(
                        plan.config, make_prefetcher(node.prefetcher), trace
                    )
                    result.prefetcher = node.prefetcher
                except Exception as error:
                    telemetry.task_failed_attempt()
                    attempts += 1
                    if attempts > options.max_retries:
                        telemetry.quarantine(node.name, "sim", str(error),
                                             attempts)
                        break
                    telemetry.retries += 1
                    time.sleep(options.retry_backoff * (2 ** (attempts - 1)))
                    continue
                telemetry.sims_run += 1
                telemetry.task_finished(node.name, "sim",
                                        time.perf_counter() - started,
                                        attempts + 1)
                results[node.cell] = result
                if cache is not None:
                    cache.put(node.key(plan.config), result)
                if progress is not None:
                    progress(*node.cell)
                break


# ---------------------------------------------------------------------------
# Pool (jobs>1) path
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class _TaskState:
    """Scheduler-side bookkeeping for one DAG task (identity-hashed)."""

    kind: str  # "trace" | "sim"
    name: str
    workload: str
    cell: tuple[str, str] | None
    payload: object
    fn: Callable
    attempts: int = 0
    future: Future | None = None
    submitted_at: float = 0.0


def _run_pool(
    plan: GridPlan,
    misses: list[SimNode],
    results: dict[tuple[str, str], SimResult],
    cache: ResultCache | None,
    telemetry: ExecTelemetry,
    trace_dir: str | Path | None,
    inject: dict[tuple[str, str], InjectSpec],
    options: ExecOptions,
    progress: Progress | None,
    jobs: int,
) -> None:
    temporary = (tempfile.TemporaryDirectory(prefix="repro-exec-")
                 if trace_dir is None else None)
    trace_root = Path(temporary.name if temporary else trace_dir)
    trace_root.mkdir(parents=True, exist_ok=True)

    groups = _group_by_workload(misses)
    waiting: dict[str, list[SimNode]] = {w: list(n) for w, n in groups.items()}
    pool = WorkerPool(jobs)
    active: list[_TaskState] = []
    # After a pool break the culprit is ambiguous (every in-flight future
    # dies), so suspects are re-run one at a time: a repeat crash then
    # charges exactly the task in flight, and healthy tasks are never
    # quarantined for a neighbour's crash.
    probe_queue: list[_TaskState] = []
    _probing = [False]  # True while the single in-flight task is a suspect
    sim_keys = {node.cell: node.key(plan.config) for node in misses}

    def submit(state: _TaskState) -> None:
        telemetry.task_started()
        try:
            state.future = pool.submit(state.fn, state.payload)
        except Exception:
            # The executor broke between our crash detection and this
            # submission; rebuild it once and retry.
            pool.restart()
            state.future = pool.submit(state.fn, state.payload)
        state.submitted_at = time.monotonic()

    def dispatch(state: _TaskState) -> None:
        """Run a task: immediately, or queued behind the serial probe."""
        if probe_queue or _probing[0]:
            probe_queue.append(state)
        else:
            submit(state)
            active.append(state)

    def quarantine(state: _TaskState, reason: str) -> None:
        telemetry.quarantine(state.name, state.kind, reason, state.attempts)
        if state.kind == "trace":
            for node in waiting.pop(state.workload, []):
                telemetry.tasks_queued = max(0, telemetry.tasks_queued - 1)
                telemetry.quarantine(
                    node.name, "sim",
                    f"trace build for {state.workload} was quarantined", 0,
                )

    def make_sim_state(node: SimNode, trace_path: str) -> _TaskState:
        spec = inject.get(node.cell)
        counter = None
        if spec is not None:
            counter = str(trace_root /
                          f"inject-{short_digest(*node.cell)}.count")
        payload = SimTaskPayload(
            workload=node.workload,
            prefetcher=node.prefetcher,
            config=plan.config,
            trace_path=trace_path,
            inject=spec,
            inject_counter_path=counter,
        )
        return _TaskState("sim", node.name, node.workload, node.cell,
                          payload, execute_sim_task)

    def complete(state: _TaskState, outcome) -> None:
        if state.kind == "trace":
            if outcome.disk_hit:
                telemetry.trace_disk_hits += 1
            else:
                telemetry.traces_built += 1
            if outcome.rebuilt_corrupt:
                telemetry.corrupt_traces += 1
            telemetry.task_finished(state.name, "trace", outcome.seconds,
                                    state.attempts + 1)
            for node in waiting.pop(state.workload, []):
                dispatch(make_sim_state(node, outcome.path))
        else:
            telemetry.sims_run += 1
            telemetry.task_finished(state.name, "sim", outcome.seconds,
                                    state.attempts + 1)
            result = outcome.result
            results[state.cell] = result
            if cache is not None:
                cache.put(sim_keys[state.cell], result)
            if progress is not None:
                progress(*state.cell)

    telemetry.task_queued(len(groups) + len(misses))
    for workload in groups:
        node = plan.trace_nodes[workload]
        payload = TraceTaskPayload(
            workload=workload,
            scale=node.scale,
            budget_fraction=node.budget_fraction,
            seed=node.seed,
            path=str(trace_root / node.filename),
        )
        state = _TaskState("trace", node.name, workload, None, payload,
                           execute_trace_task)
        submit(state)
        active.append(state)

    try:
        while active or probe_queue:
            if not active and probe_queue:
                # Pump the serial probe: exactly one suspect in flight,
                # so a pool break now has an unambiguous culprit.
                state = probe_queue.pop(0)
                _probing[0] = True
                submit(state)
                active.append(state)

            futures = {state.future: state for state in active}
            done, _ = wait(list(futures), timeout=0.25,
                           return_when=FIRST_COMPLETED)
            pool_broke = False
            for future in done:
                state = futures[future]
                try:
                    error = future.exception()
                except CancelledError:
                    pool_broke = True
                    continue
                if error is None:
                    active.remove(state)
                    _probing[0] = False
                    complete(state, future.result())
                elif WorkerPool.is_pool_failure(error):
                    pool_broke = True
                else:
                    active.remove(state)
                    _probing[0] = False
                    telemetry.task_failed_attempt()
                    state.attempts += 1
                    if state.attempts > options.max_retries:
                        quarantine(state, str(error))
                    else:
                        telemetry.retries += 1
                        time.sleep(options.retry_backoff
                                   * (2 ** (state.attempts - 1)))
                        telemetry.tasks_queued += 1
                        dispatch(state)

            if pool_broke:
                # A worker died and every outstanding future died with
                # the executor.
                telemetry.worker_crashes += 1
                pool.restart()
                if len(active) == 1:
                    # Exactly one task was in flight (e.g. the serial
                    # probe): attribution is exact, so charge it.
                    state = active.pop()
                    _probing[0] = False
                    telemetry.task_failed_attempt()
                    state.attempts += 1
                    if state.attempts > options.max_retries:
                        quarantine(state, "worker process died")
                    else:
                        telemetry.retries += 1
                        time.sleep(options.retry_backoff
                                   * (2 ** (state.attempts - 1)))
                        telemetry.tasks_queued += 1
                        probe_queue.insert(0, state)
                else:
                    # Several tasks were in flight, so the culprit is
                    # unknown; move them all — uncharged — to the probe
                    # queue to be re-run one at a time.
                    for state in active:
                        telemetry.task_failed_attempt()
                        telemetry.tasks_queued += 1
                    probe_queue[:0] = active
                    active = []
                continue

            if options.timeout is not None and active:
                now = time.monotonic()
                expired = {
                    state for state in active
                    if now - state.submitted_at > options.timeout
                }
                if expired:
                    # A hung task only dies with its worker, and the
                    # executor cannot survive that — kill the pool and
                    # resubmit everything, charging only the laggards.
                    telemetry.timeouts += len(expired)
                    pool.restart()
                    _probing[0] = False
                    pending = active
                    active = []
                    for state in pending:
                        telemetry.task_failed_attempt()
                        if state in expired:
                            state.attempts += 1
                            if state.attempts > options.max_retries:
                                quarantine(
                                    state,
                                    f"timed out after {options.timeout:.1f}s",
                                )
                                continue
                            telemetry.retries += 1
                        telemetry.tasks_queued += 1
                        dispatch(state)
    finally:
        pool.shutdown()
        if temporary is not None:
            temporary.cleanup()


def quarantine_report(telemetry: ExecTelemetry) -> str:
    """One-line-per-task description of everything quarantined."""
    lines = [
        f"  {entry['task']} ({entry['kind']}, {entry['attempts']} "
        f"attempt(s)): {entry['reason']}"
        for entry in telemetry.quarantined
    ]
    return "\n".join(lines)
