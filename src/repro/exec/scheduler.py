"""DAG orchestration: cache probe, fan-out, retries, quarantine, degradation.

:func:`execute_grid` drives a :class:`~repro.exec.plan.GridPlan` to
completion:

1. every simulation node is probed against the result cache — hits are
   returned without scheduling any work;
2. the remaining cells group by workload; each workload's trace-build
   task is dispatched to the worker pool, and its simulation tasks are
   released the moment the trace lands (no barrier between workloads);
3. every task attempt is wrapped with an optional timeout, bounded retry
   with exponential backoff, and worker-crash recovery.  Failures are
   classified (:func:`repro.common.errors.classify_error`): permanent
   failures skip the retry budget and quarantine immediately; transient
   ones retry with backoff.  A task that exhausts its retries is
   *quarantined* — recorded in telemetry and skipped — so one poisoned
   cell can never hang or abort the rest of the grid.  Quarantining a
   trace task quarantines its dependent sims.
4. a per-workload **circuit breaker** counts quarantined simulations;
   at ``options.breaker_threshold`` the workload is marked DEGRADED and
   its remaining cells are skipped, letting the grid complete with
   explicit holes instead of burning the retry budget cell by cell.

Durability: when a :class:`~repro.exec.journal.RunJournal` is supplied,
every outcome (cache hit, completed task, quarantine, degradation) is
appended to it with an fsync, and a prior run's
:class:`~repro.exec.journal.RunReplay` can be *carried* in: completed
cells replay through the cache, and quarantine/degradation decisions are
preserved instead of re-attempted.

``jobs=1`` runs everything in-process (no pool, no pickling) through the
same cache/telemetry bookkeeping, so serial runs stay bit-identical to
the historical path while still benefiting from the result cache.
"""

from __future__ import annotations

import os
import tempfile
import time
from concurrent.futures import CancelledError, FIRST_COMPLETED, Future, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping

from repro import obs
from repro.common.errors import (
    ErrorKind,
    ExecError,
    PermanentError,
    classify_error,
)
from repro.exec import faults
from repro.exec import telemetry as telemetry_module
from repro.exec.cache import ResultCache
from repro.exec.journal import RunJournal, RunReplay
from repro.exec.keys import short_digest
from repro.exec.plan import GridPlan, SimNode
from repro.exec.pool import (
    BatchTaskPayload,
    InjectSpec,
    SimTaskPayload,
    TraceTaskPayload,
    WorkerPool,
    build_workload_trace,
    execute_batch_task,
    execute_sim_task,
    execute_trace_task,
)
from repro.exec.telemetry import ExecTelemetry
from repro.sim.batch import BatchLane, BatchSimulationEngine
from repro.sim.engine import SimulationEngine, simulate
from repro.sim.results import SimResult
from repro.trace.stream import Trace

#: Progress callback signature: (workload, prefetcher) per finished cell.
Progress = Callable[[str, str], None]


@dataclass
class ExecOptions:
    """Execution policy knobs.

    Attributes:
        jobs: worker processes; None means ``os.cpu_count()``; 1 runs
            in-process.
        timeout: per-task wall-clock limit in seconds (pool mode only —
            an in-process task cannot be interrupted).  None disables.
        max_retries: failed attempts beyond the first before a task is
            quarantined (so a task runs at most ``1 + max_retries`` times).
            Permanent failures ignore this and quarantine immediately.
        retry_backoff: base sleep before a retry; doubles per attempt.
        breaker_threshold: quarantined simulations after which a
            workload trips its circuit breaker and is marked DEGRADED
            (its remaining cells are skipped).  ``0`` disables the
            breaker.
        engine: simulation engine tier.  ``"auto"`` (default) picks the
            fast per-cell engine, upgrading a workload's cells to the
            batch backend when at least ``batch_threshold`` of them
            share its trace; ``"fast"`` / ``"reference"`` /
            ``"batch"`` force one tier.  Cells with fault injection
            never batch (injection is a per-cell facility), and a
            failed batch is demoted once to per-cell execution rather
            than retried, so every failure policy stays per-cell.
        batch_threshold: minimum cells sharing one trace before
            ``"auto"`` upgrades them to the batch backend.
    """

    jobs: int | None = None
    timeout: float | None = None
    max_retries: int = 2
    retry_backoff: float = 0.05
    breaker_threshold: int = 3
    engine: str = "auto"
    batch_threshold: int = 8

    def effective_jobs(self) -> int:
        if self.jobs is None:
            return os.cpu_count() or 1
        return max(1, self.jobs)


#: Engine tiers accepted by :attr:`ExecOptions.engine`.
ENGINE_TIERS = ("auto", "fast", "reference", "batch")


def _should_batch(options: ExecOptions, eligible: int) -> bool:
    """Decide whether a workload group's cells run as one batch."""
    if options.engine == "batch":
        return eligible >= 1
    if options.engine == "auto":
        return eligible >= max(1, options.batch_threshold)
    return False


class _GridState:
    """Failure-policy bookkeeping shared by the serial and pool paths."""

    def __init__(
        self,
        plan: GridPlan,
        options: ExecOptions,
        telemetry: ExecTelemetry,
        journal: RunJournal | None,
        carried: RunReplay | None,
    ) -> None:
        self.plan = plan
        self.options = options
        self.telemetry = telemetry
        self.journal = journal
        self.breaker: dict[str, int] = {}
        self.degraded: dict[str, str] = {}
        if carried is not None:
            for workload, reason in carried.degraded.items():
                self.degraded[workload] = reason or "carried from prior run"

    def journal_done(self, node: SimNode, source: str) -> None:
        if self.journal is not None:
            self.journal.task_done(
                node.name, "sim", cell=node.cell,
                key=node.key(self.plan.config), source=source,
            )

    def journal_trace_done(self, name: str) -> None:
        if self.journal is not None:
            self.journal.task_done(name, "trace")

    def quarantine(self, name: str, kind: str, reason: str, attempts: int,
                   classification: str,
                   cell: tuple[str, str] | None = None) -> None:
        self.telemetry.quarantine(name, kind, reason, attempts,
                                  classification)
        if self.journal is not None:
            self.journal.task_quarantined(name, kind, reason, attempts,
                                          classification, cell=cell)

    def record_sim_failure(self, workload: str) -> bool:
        """Count one quarantined sim; True if the breaker just tripped."""
        count = self.breaker.get(workload, 0) + 1
        self.breaker[workload] = count
        threshold = self.options.breaker_threshold
        if threshold > 0 and count >= threshold and workload not in self.degraded:
            reason = (f"{count} simulation(s) quarantined "
                      f"(breaker threshold {threshold})")
            self.degrade(workload, reason, count)
            return True
        return False

    def degrade(self, workload: str, reason: str, failures: int) -> None:
        if workload in self.degraded:
            return
        self.degraded[workload] = reason
        self.telemetry.degrade(workload, reason, failures)
        if self.journal is not None:
            self.journal.workload_degraded(workload, reason, failures)

    def skip_degraded(self, node: SimNode) -> None:
        """Drop one pending sim of a degraded workload (no attempts)."""
        self.telemetry.tasks_queued = max(0, self.telemetry.tasks_queued - 1)
        self.quarantine(
            node.name, "sim",
            f"workload {node.workload} is DEGRADED: "
            f"{self.degraded[node.workload]}",
            0, "degraded", cell=node.cell,
        )


def execute_grid(
    plan: GridPlan,
    *,
    options: ExecOptions | None = None,
    cache: ResultCache | None = None,
    trace_dir: str | Path | None = None,
    trace_provider: Callable[[str], Trace] | None = None,
    inject: Mapping[tuple[str, str], InjectSpec] | None = None,
    progress: Progress | None = None,
    stats_path: str | Path | None = None,
    telemetry: ExecTelemetry | None = None,
    journal: RunJournal | None = None,
    carried: RunReplay | None = None,
    pool: WorkerPool | None = None,
) -> tuple[dict[tuple[str, str], SimResult], ExecTelemetry]:
    """Execute a grid plan; returns (results by cell, telemetry).

    Quarantined and degraded cells are *absent* from the result mapping
    and listed in ``telemetry.quarantined`` / ``telemetry.degraded`` —
    the caller decides whether that is fatal.

    Args:
        cache: result cache; probed before scheduling, filled after.
        trace_dir: where built traces are persisted for workers to read
            (a private temporary directory is used when omitted).
        trace_provider: in-process trace source used on the serial path
            (``GridRunner.trace``), so serial runs share the caller's
            trace caches.
        inject: test-only fault injection per (workload, prefetcher).
        stats_path: where to persist the telemetry JSON snapshot.
        journal: write-ahead run journal; every outcome is appended.
        carried: a prior run's replayed state (``--resume``): completed
            cells count as resumed when the cache still holds them, and
            quarantine/degradation decisions carry forward.
        pool: an externally owned :class:`WorkerPool` to submit into
            instead of creating (and tearing down) a private one — the
            serve broker batches many small grids through one long-lived
            pool this way.  The caller keeps ownership: the pool is left
            running on return (its worker count also overrides
            ``options.jobs`` on the pool path).
    """
    options = options or ExecOptions()
    jobs = options.effective_jobs()
    if telemetry is None:
        telemetry = ExecTelemetry()
    telemetry.jobs = jobs
    grid_started = time.perf_counter()

    state = _GridState(plan, options, telemetry, journal, carried)
    carried_completed = carried.completed if carried is not None else {}
    carried_quarantined = (carried.quarantined_cells if carried is not None
                           else set())

    results: dict[tuple[str, str], SimResult] = {}
    misses: list[SimNode] = []
    for node in plan.sim_nodes:
        if node.workload in state.degraded:
            state.quarantine(
                node.name, "sim",
                f"workload {node.workload} was DEGRADED in the resumed run: "
                f"{state.degraded[node.workload]}",
                0, "degraded", cell=node.cell,
            )
            continue
        if node.cell in carried_quarantined:
            state.breaker[node.workload] = (
                state.breaker.get(node.workload, 0) + 1
            )
            state.quarantine(
                node.name, "sim",
                "quarantined in the resumed run; not re-attempted",
                0, "carried", cell=node.cell,
            )
            continue
        if cache is not None:
            hit = cache.get(node.key(plan.config))
            if hit is not None:
                telemetry.cache_hits += 1
                if node.cell in carried_completed:
                    telemetry.resumed_cells += 1
                results[node.cell] = hit
                state.journal_done(node, source="cache")
                if progress is not None:
                    progress(*node.cell)
                continue
            telemetry.cache_misses += 1
            if node.cell in carried_completed:
                # The journal says this cell finished, but its cached
                # artifact is gone or failed verification — demote to a
                # rebuild instead of trusting a phantom result.
                telemetry_module.logger.warning(
                    "journal records %s complete but the cache cannot "
                    "replay it; re-executing", node.name,
                )
        misses.append(node)

    if pool is not None and jobs <= 1:
        # A borrowed pool implies the pool path even for one worker —
        # the owner sized it deliberately.
        jobs = max(jobs, pool.jobs)
    try:
        if misses:
            if jobs <= 1:
                _run_serial(plan, misses, results, cache, state,
                            trace_provider, dict(inject or {}), options,
                            progress)
            else:
                _run_pool(plan, misses, results, cache, state,
                          trace_dir, dict(inject or {}), options, progress,
                          jobs, shared_pool=pool)
    finally:
        telemetry.finish()
        telemetry_module.LAST_RUN = telemetry
        if stats_path is not None:
            telemetry.persist(stats_path)
        if obs.enabled():
            obs.record_seconds("exec.grid",
                               time.perf_counter() - grid_started)
            obs.add("exec.cells", len(plan.sim_nodes))
            obs.add("exec.cache_hits", telemetry.cache_hits)
            obs.add("exec.cache_misses", telemetry.cache_misses)
            obs.add("exec.sims_run", telemetry.sims_run)
            obs.add("exec.traces_built", telemetry.traces_built)
    return results, telemetry


def _group_by_workload(nodes: list[SimNode]) -> dict[str, list[SimNode]]:
    groups: dict[str, list[SimNode]] = {}
    for node in nodes:
        groups.setdefault(node.workload, []).append(node)
    return groups


# ---------------------------------------------------------------------------
# Serial (jobs=1) path
# ---------------------------------------------------------------------------


def _run_serial(
    plan: GridPlan,
    misses: list[SimNode],
    results: dict[tuple[str, str], SimResult],
    cache: ResultCache | None,
    state: _GridState,
    trace_provider: Callable[[str], Trace] | None,
    inject: dict[tuple[str, str], InjectSpec],
    options: ExecOptions,
    progress: Progress | None,
) -> None:
    from repro.harness.registry import make_prefetcher

    telemetry = state.telemetry
    groups = _group_by_workload(misses)
    telemetry.task_queued(len(groups) + len(misses))
    for workload, nodes in groups.items():
        trace_node = plan.trace_nodes[workload]
        telemetry.task_started()
        started = time.perf_counter()
        try:
            if trace_provider is not None:
                trace = trace_provider(workload)
            else:
                trace = build_workload_trace(
                    workload, trace_node.scale, trace_node.budget_fraction,
                    trace_node.seed,
                )
        except Exception as error:
            telemetry.task_failed_attempt()
            kind = classify_error(error)
            state.quarantine(trace_node.name, "trace", str(error), 1,
                             kind.value)
            state.degrade(workload, f"trace build failed: {error}", 1)
            for node in nodes:
                telemetry.tasks_queued = max(0, telemetry.tasks_queued - 1)
                state.quarantine(
                    node.name, "sim",
                    f"trace build for {workload} was quarantined", 0,
                    "degraded", cell=node.cell,
                )
            continue
        telemetry.traces_built += 1
        telemetry.task_finished(trace_node.name, "trace",
                                time.perf_counter() - started, 1)
        state.journal_trace_done(trace_node.name)

        # Engine-tier selection: cells without fault injection may run
        # as one batch over the shared trace; a failed batch falls back
        # to the per-cell loop below, which owns every failure policy.
        pending = list(nodes)
        batchable = [node for node in pending
                     if inject.get(node.cell) is None
                     and node.workload not in state.degraded]
        if _should_batch(options, len(batchable)):
            done = _run_serial_batch(plan, batchable, results, cache,
                                     state, trace, progress)
            if done:
                pending = [node for node in pending
                           if node not in batchable]

        for node in pending:
            if node.workload in state.degraded:
                state.skip_degraded(node)
                continue
            spec = inject.get(node.cell)
            counter = [0]
            attempts = 0
            while True:
                telemetry.task_started()
                started = time.perf_counter()
                try:
                    _apply_serial_injection(spec, counter)
                    if options.engine == "reference":
                        engine = SimulationEngine(
                            plan.config, make_prefetcher(node.prefetcher)
                        )
                        result = engine.run_reference(trace)
                    else:
                        result = simulate(
                            plan.config, make_prefetcher(node.prefetcher),
                            trace,
                        )
                    result.prefetcher = node.prefetcher
                except Exception as error:
                    telemetry.task_failed_attempt()
                    attempts += 1
                    error_kind = classify_error(error)
                    permanent = error_kind is ErrorKind.PERMANENT
                    if permanent or attempts > options.max_retries:
                        state.quarantine(node.name, "sim", str(error),
                                         attempts, error_kind.value,
                                         cell=node.cell)
                        state.record_sim_failure(node.workload)
                        break
                    telemetry.retries += 1
                    time.sleep(options.retry_backoff * (2 ** (attempts - 1)))
                    continue
                telemetry.sims_run += 1
                telemetry.task_finished(node.name, "sim",
                                        time.perf_counter() - started,
                                        attempts + 1)
                results[node.cell] = result
                if cache is not None:
                    cache.put(node.key(plan.config), result)
                state.journal_done(node, source="run")
                if progress is not None:
                    progress(*node.cell)
                faults.check("task-done")
                break


def _run_serial_batch(
    plan: GridPlan,
    nodes: list[SimNode],
    results: dict[tuple[str, str], SimResult],
    cache: ResultCache | None,
    state: _GridState,
    trace: Trace,
    progress: Progress | None,
) -> bool:
    """Run one workload group as a batch; False demotes it to per-cell.

    Batch execution is all-or-nothing: the backend raises before
    returning any result, so a failure leaves no partial state and the
    caller simply re-runs every cell through the per-cell loop (whose
    retry/quarantine policy then applies per cell).
    """
    telemetry = state.telemetry
    lanes = [BatchLane(prefetcher=node.prefetcher, config=plan.config)
             for node in nodes]
    started = time.perf_counter()
    try:
        batch_results = BatchSimulationEngine(lanes).run(trace)
    except Exception as error:
        telemetry_module.logger.warning(
            "batch engine failed for %s (%s); demoting %d cell(s) to "
            "per-cell execution", nodes[0].workload, error, len(nodes),
        )
        return False
    share = (time.perf_counter() - started) / len(nodes)
    for node, result in zip(nodes, batch_results):
        result.prefetcher = node.prefetcher
        telemetry.task_started()
        telemetry.sims_run += 1
        telemetry.batched_cells += 1
        telemetry.task_finished(node.name, "sim", share, 1)
        results[node.cell] = result
        if cache is not None:
            cache.put(node.key(plan.config), result)
        state.journal_done(node, source="run")
        if progress is not None:
            progress(*node.cell)
        faults.check("task-done")
    return True


def _apply_serial_injection(spec: InjectSpec | None, counter: list[int]) -> None:
    """Honour an in-process injection spec.

    Only the raise modes are meaningful in-process: ``crash`` and
    ``hang`` would take the caller down with them, so (as documented on
    :class:`InjectSpec`) they are ignored on the serial path.
    """
    if spec is None or counter[0] >= spec.times:
        return
    counter[0] += 1
    if spec.mode == "raise-permanent":
        raise PermanentError(
            f"injected permanent failure (attempt {counter[0]} of "
            f"{spec.times})"
        )
    if spec.mode == "raise":
        raise ExecError(
            f"injected failure (attempt {counter[0]} of {spec.times})"
        )


# ---------------------------------------------------------------------------
# Pool (jobs>1) path
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class _TaskState:
    """Scheduler-side bookkeeping for one DAG task (identity-hashed)."""

    kind: str  # "trace" | "sim" | "batch"
    name: str
    workload: str
    cell: tuple[str, str] | None
    payload: object
    fn: Callable
    attempts: int = 0
    future: Future | None = None
    submitted_at: float = 0.0
    #: The grid cells a "batch" task carries (demotion fans these back
    #: out as individual sim tasks).
    nodes: list[SimNode] | None = None


def _run_pool(
    plan: GridPlan,
    misses: list[SimNode],
    results: dict[tuple[str, str], SimResult],
    cache: ResultCache | None,
    state: _GridState,
    trace_dir: str | Path | None,
    inject: dict[tuple[str, str], InjectSpec],
    options: ExecOptions,
    progress: Progress | None,
    jobs: int,
    shared_pool: WorkerPool | None = None,
) -> None:
    telemetry = state.telemetry
    temporary = (tempfile.TemporaryDirectory(prefix="repro-exec-")
                 if trace_dir is None else None)
    trace_root = Path(temporary.name if temporary else trace_dir)
    trace_root.mkdir(parents=True, exist_ok=True)

    groups = _group_by_workload(misses)
    waiting: dict[str, list[SimNode]] = {w: list(n) for w, n in groups.items()}
    pool = shared_pool if shared_pool is not None else WorkerPool(jobs)
    active: list[_TaskState] = []
    # After a pool break the culprit is ambiguous (every in-flight future
    # dies), so suspects are re-run one at a time: a repeat crash then
    # charges exactly the task in flight, and healthy tasks are never
    # quarantined for a neighbour's crash.
    probe_queue: list[_TaskState] = []
    _probing = [False]  # True while the single in-flight task is a suspect
    sim_keys = {node.cell: node.key(plan.config) for node in misses}

    def submit(task: _TaskState) -> None:
        telemetry.task_started()
        try:
            task.future = pool.submit(task.fn, task.payload)
        except Exception:
            # The executor broke between our crash detection and this
            # submission; rebuild it once and retry.
            pool.restart()
            task.future = pool.submit(task.fn, task.payload)
        task.submitted_at = time.monotonic()

    def dispatch(task: _TaskState) -> None:
        """Run a task: immediately, or queued behind the serial probe."""
        if task.kind == "sim" and task.workload in state.degraded:
            telemetry.tasks_queued = max(0, telemetry.tasks_queued - 1)
            state.quarantine(
                task.name, "sim",
                f"workload {task.workload} is DEGRADED: "
                f"{state.degraded[task.workload]}",
                task.attempts, "degraded", cell=task.cell,
            )
            return
        if task.kind == "batch" and task.workload in state.degraded:
            for node in task.nodes or []:
                state.skip_degraded(node)
            return
        if probe_queue or _probing[0]:
            probe_queue.append(task)
        else:
            submit(task)
            active.append(task)

    def demote(task: _TaskState) -> None:
        """Fan a failed batch back out as individual sim tasks.

        One-way: the demoted cells are fresh sim tasks with their own
        retry budgets, so a misbehaving batch can never loop — and a
        cell-level fault (e.g. one poisoned prefetcher) is then charged
        to exactly that cell by the ordinary per-cell policy.
        """
        trace_path = task.payload.trace_path
        telemetry_module.logger.warning(
            "batch task %s failed; demoting %d cell(s) to per-cell "
            "execution", task.name, len(task.nodes or []),
        )
        # The batch consumed one queued slot for its N cells; restore it
        # so the N per-cell dispatches below balance the ledger.
        telemetry.tasks_queued += 1
        for node in task.nodes or []:
            dispatch(make_sim_state(node, trace_path))

    def quarantine(task: _TaskState, reason: str,
                   classification: str) -> None:
        state.quarantine(task.name, task.kind, reason, task.attempts,
                         classification, cell=task.cell)
        if task.kind == "trace":
            state.degrade(task.workload, f"trace build failed: {reason}",
                          task.attempts)
            for node in waiting.pop(task.workload, []):
                telemetry.tasks_queued = max(0, telemetry.tasks_queued - 1)
                state.quarantine(
                    node.name, "sim",
                    f"trace build for {task.workload} was quarantined", 0,
                    "degraded", cell=node.cell,
                )
        else:
            if state.record_sim_failure(task.workload):
                _drop_degraded_pending(task.workload)

    def _drop_degraded_pending(workload: str) -> None:
        """Skip every not-yet-running sim of a freshly degraded workload."""
        for node in waiting.pop(workload, []):
            state.skip_degraded(node)
        keep: list[_TaskState] = []
        for queued in probe_queue:
            if queued.kind == "batch" and queued.workload == workload:
                for node in queued.nodes or []:
                    state.skip_degraded(node)
                continue
            if queued.kind == "sim" and queued.workload == workload:
                telemetry.tasks_queued = max(0, telemetry.tasks_queued - 1)
                state.quarantine(
                    queued.name, "sim",
                    f"workload {workload} is DEGRADED: "
                    f"{state.degraded[workload]}",
                    queued.attempts, "degraded", cell=queued.cell,
                )
            else:
                keep.append(queued)
        probe_queue[:] = keep

    def make_sim_state(node: SimNode, trace_path: str) -> _TaskState:
        spec = inject.get(node.cell)
        counter = None
        if spec is not None:
            counter = str(trace_root /
                          f"inject-{short_digest(*node.cell)}.count")
        payload = SimTaskPayload(
            workload=node.workload,
            prefetcher=node.prefetcher,
            config=plan.config,
            trace_path=trace_path,
            inject=spec,
            inject_counter_path=counter,
        )
        return _TaskState("sim", node.name, node.workload, node.cell,
                          payload, execute_sim_task)

    def make_batch_state(nodes: list[SimNode],
                         trace_path: str) -> _TaskState:
        payload = BatchTaskPayload(
            workload=nodes[0].workload,
            prefetchers=tuple(node.prefetcher for node in nodes),
            config=plan.config,
            trace_path=trace_path,
        )
        return _TaskState("batch", f"batch:{nodes[0].workload}",
                          nodes[0].workload, None, payload,
                          execute_batch_task, nodes=list(nodes))

    def complete(task: _TaskState, outcome) -> None:
        if task.kind == "trace":
            if outcome.disk_hit:
                telemetry.trace_disk_hits += 1
            else:
                telemetry.traces_built += 1
            if outcome.rebuilt_corrupt:
                telemetry.corrupt_traces += 1
            telemetry.task_finished(task.name, "trace", outcome.seconds,
                                    task.attempts + 1)
            state.journal_trace_done(task.name)
            released = waiting.pop(task.workload, [])
            batchable = [node for node in released
                         if inject.get(node.cell) is None]
            if _should_batch(options, len(batchable)):
                dispatch(make_batch_state(batchable, outcome.path))
                released = [node for node in released
                            if node not in batchable]
            for node in released:
                dispatch(make_sim_state(node, outcome.path))
        elif task.kind == "batch":
            nodes = task.nodes or []
            share = outcome.seconds / max(1, len(nodes))
            for index, (node, result) in enumerate(zip(nodes,
                                                       outcome.results)):
                if index > 0:
                    # The batch consumed one queued slot; its remaining
                    # cells move queued -> done here.
                    telemetry.task_started()
                telemetry.sims_run += 1
                telemetry.batched_cells += 1
                telemetry.task_finished(node.name, "sim", share,
                                        task.attempts + 1)
                results[node.cell] = result
                if cache is not None:
                    cache.put(sim_keys[node.cell], result)
                if state.journal is not None:
                    state.journal.task_done(node.name, "sim",
                                            cell=node.cell,
                                            key=sim_keys[node.cell],
                                            source="run")
                if progress is not None:
                    progress(*node.cell)
        else:
            telemetry.sims_run += 1
            telemetry.task_finished(task.name, "sim", outcome.seconds,
                                    task.attempts + 1)
            result = outcome.result
            results[task.cell] = result
            if cache is not None:
                cache.put(sim_keys[task.cell], result)
            if state.journal is not None:
                state.journal.task_done(task.name, "sim", cell=task.cell,
                                        key=sim_keys[task.cell],
                                        source="run")
            if progress is not None:
                progress(*task.cell)
        faults.check("task-done")

    telemetry.task_queued(len(groups) + len(misses))
    for workload in groups:
        node = plan.trace_nodes[workload]
        payload = TraceTaskPayload(
            workload=workload,
            scale=node.scale,
            budget_fraction=node.budget_fraction,
            seed=node.seed,
            path=str(trace_root / node.filename),
        )
        task = _TaskState("trace", node.name, workload, None, payload,
                          execute_trace_task)
        submit(task)
        active.append(task)

    try:
        while active or probe_queue:
            if not active and probe_queue:
                # Pump the serial probe: exactly one suspect in flight,
                # so a pool break now has an unambiguous culprit.
                task = probe_queue.pop(0)
                _probing[0] = True
                submit(task)
                active.append(task)

            futures = {task.future: task for task in active}
            done, _ = wait(list(futures), timeout=0.25,
                           return_when=FIRST_COMPLETED)
            pool_broke = False
            for future in done:
                task = futures[future]
                try:
                    error = future.exception()
                except CancelledError:
                    pool_broke = True
                    continue
                if error is None:
                    active.remove(task)
                    _probing[0] = False
                    complete(task, future.result())
                elif WorkerPool.is_pool_failure(error):
                    pool_broke = True
                else:
                    active.remove(task)
                    _probing[0] = False
                    telemetry.task_failed_attempt()
                    task.attempts += 1
                    if task.kind == "batch":
                        demote(task)
                        continue
                    error_kind = classify_error(error)
                    if (error_kind is ErrorKind.PERMANENT
                            or task.attempts > options.max_retries):
                        quarantine(task, str(error), error_kind.value)
                    elif (task.kind == "sim"
                          and task.workload in state.degraded):
                        state.quarantine(
                            task.name, "sim",
                            f"workload {task.workload} is DEGRADED: "
                            f"{state.degraded[task.workload]}",
                            task.attempts, "degraded", cell=task.cell,
                        )
                    else:
                        telemetry.retries += 1
                        time.sleep(options.retry_backoff
                                   * (2 ** (task.attempts - 1)))
                        telemetry.tasks_queued += 1
                        dispatch(task)

            if pool_broke:
                # A worker died and every outstanding future died with
                # the executor.
                telemetry.worker_crashes += 1
                pool.restart()
                if len(active) == 1:
                    # Exactly one task was in flight (e.g. the serial
                    # probe): attribution is exact, so charge it.
                    task = active.pop()
                    _probing[0] = False
                    telemetry.task_failed_attempt()
                    task.attempts += 1
                    if task.kind == "batch":
                        demote(task)
                    elif task.attempts > options.max_retries:
                        quarantine(task, "worker process died", "poisoned")
                    else:
                        telemetry.retries += 1
                        time.sleep(options.retry_backoff
                                   * (2 ** (task.attempts - 1)))
                        telemetry.tasks_queued += 1
                        probe_queue.insert(0, task)
                else:
                    # Several tasks were in flight, so the culprit is
                    # unknown; move them all — uncharged — to the probe
                    # queue to be re-run one at a time.
                    for task in active:
                        telemetry.task_failed_attempt()
                        telemetry.tasks_queued += 1
                    probe_queue[:0] = active
                    active = []
                continue

            if options.timeout is not None and active:
                now = time.monotonic()
                expired = {
                    task for task in active
                    if now - task.submitted_at > options.timeout
                }
                if expired:
                    # A hung task only dies with its worker, and the
                    # executor cannot survive that — kill the pool and
                    # resubmit everything, charging only the laggards.
                    telemetry.timeouts += len(expired)
                    pool.restart()
                    _probing[0] = False
                    pending = active
                    active = []
                    for task in pending:
                        telemetry.task_failed_attempt()
                        if task in expired:
                            task.attempts += 1
                            if task.kind == "batch":
                                demote(task)
                                continue
                            if task.attempts > options.max_retries:
                                quarantine(
                                    task,
                                    f"timed out after {options.timeout:.1f}s",
                                    "poisoned",
                                )
                                continue
                            telemetry.retries += 1
                        telemetry.tasks_queued += 1
                        dispatch(task)
    finally:
        if shared_pool is None:
            pool.shutdown()
        if temporary is not None:
            temporary.cleanup()


def quarantine_report(telemetry: ExecTelemetry) -> str:
    """One-line-per-task description of everything quarantined."""
    lines = [
        f"  {entry['task']} ({entry['kind']}, {entry['attempts']} "
        f"attempt(s)): {entry['reason']}"
        for entry in telemetry.quarantined
    ]
    for entry in telemetry.degraded:
        lines.append(
            f"  workload {entry['workload']} DEGRADED: {entry['reason']}"
        )
    return "\n".join(lines)
