"""Parallel grid execution engine.

``repro.exec`` turns a (workload x prefetcher) evaluation grid into an
explicit task DAG — one trace-build task per workload fanning out into
per-prefetcher simulation tasks — and executes it on a multiprocessing
worker pool with a content-addressed on-disk result cache, per-task
timeout/retry, and worker-crash recovery.

Layering: the engine sits *below* :class:`repro.harness.runner.GridRunner`
(which delegates to it for ``jobs != 1`` or when a result cache is
configured) and *above* ``repro.sim`` / ``repro.trace`` / ``repro.workloads``
(whose artifacts it schedules).  It never imports the harness at module
scope, so the harness can import it freely.

============== ==========================================================
``keys``       stable content-addressed hashing of task inputs
``plan``       the task DAG (trace nodes fanning into sim nodes)
``cache``      on-disk result cache keyed by ``keys.sim_key``
``pool``       worker-side task execution + pool lifecycle
``scheduler``  DAG orchestration, retries, quarantine, degradation
``telemetry``  counters, per-task wall times, ETA, persistence
``journal``    write-ahead run journal + resume replay
``faults``     deterministic fault injection for the test suite
``singleflight`` key -> in-flight-work dedup registry (serve broker)
============== ==========================================================
"""

from repro.exec.cache import CACHE_SCHEMA_VERSION, ResultCache
from repro.exec.faults import FaultInjector, FaultSpec, parse_fault_plan
from repro.exec.journal import (
    JOURNAL_SCHEMA_VERSION,
    RunJournal,
    RunReplay,
    RunSummary,
    list_runs,
    load_run,
    new_run_id,
    replay,
    run_fingerprint,
)
from repro.exec.keys import (
    CODE_VERSION,
    sim_key,
    stable_hash,
    trace_filename,
    trace_key,
)
from repro.exec.plan import GridPlan, SimNode, TraceNode
from repro.exec.pool import InjectSpec, WorkerPool, trace_nbytes
from repro.exec.scheduler import ExecOptions, execute_grid
from repro.exec.singleflight import SingleFlight
from repro.exec.telemetry import ExecTelemetry

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CODE_VERSION",
    "ExecOptions",
    "ExecTelemetry",
    "FaultInjector",
    "FaultSpec",
    "GridPlan",
    "InjectSpec",
    "JOURNAL_SCHEMA_VERSION",
    "ResultCache",
    "RunJournal",
    "RunReplay",
    "RunSummary",
    "SimNode",
    "SingleFlight",
    "TraceNode",
    "WorkerPool",
    "execute_grid",
    "list_runs",
    "load_run",
    "new_run_id",
    "parse_fault_plan",
    "replay",
    "run_fingerprint",
    "sim_key",
    "stable_hash",
    "trace_filename",
    "trace_key",
    "trace_nbytes",
]
