"""Execution telemetry: counters, per-task wall times, ETA, persistence.

One :class:`ExecTelemetry` instance accompanies each scheduled grid; the
scheduler updates it live (tasks queued/running/done, cache hits, retries,
crashes, quarantines) and persists a JSON snapshot next to the result
cache so ``python -m repro exec-stats`` can report on the last run from a
different process.  The module also keeps a handful of process-wide
counters (e.g. corrupt traces recovered) that are incremented from code
paths with no telemetry object in scope.
"""

from __future__ import annotations

import json
import logging
import os
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

logger = logging.getLogger("repro.exec")

#: Process-wide event counters, for code paths that run outside a
#: scheduled grid (e.g. ``GridRunner.trace`` recovering a corrupt file).
PROCESS_COUNTERS: dict[str, int] = {"corrupt_traces": 0}

#: The telemetry of the most recent :func:`repro.exec.scheduler.execute_grid`
#: call in this process (tests and interactive sessions read it back).
LAST_RUN: "ExecTelemetry | None" = None


def count_corrupt_trace(path: object, telemetry: "ExecTelemetry | None" = None) -> None:
    """Record one corrupt/truncated on-disk trace that was rebuilt."""
    logger.warning("corrupt trace file %s: discarding and rebuilding", path)
    PROCESS_COUNTERS["corrupt_traces"] += 1
    if telemetry is not None:
        telemetry.corrupt_traces += 1


@dataclass
class TaskTiming:
    """Wall time of one completed task attempt."""

    name: str
    kind: str
    seconds: float
    attempts: int


@dataclass
class ExecTelemetry:
    """Everything measured about one grid execution."""

    jobs: int = 1
    tasks_total: int = 0
    tasks_queued: int = 0
    tasks_running: int = 0
    tasks_done: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    traces_built: int = 0
    trace_disk_hits: int = 0
    sims_run: int = 0
    batched_cells: int = 0
    retries: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    corrupt_traces: int = 0
    corrupt_results: int = 0
    resumed_cells: int = 0
    degraded: list[dict[str, Any]] = field(default_factory=list)
    quarantined: list[dict[str, Any]] = field(default_factory=list)
    task_times: list[TaskTiming] = field(default_factory=list)
    wall_seconds: float = 0.0
    _started: float = field(default_factory=time.perf_counter, repr=False)

    # -- live updates -------------------------------------------------------

    def task_queued(self, count: int = 1) -> None:
        self.tasks_total += count
        self.tasks_queued += count

    def task_started(self) -> None:
        self.tasks_queued = max(0, self.tasks_queued - 1)
        self.tasks_running += 1

    def task_finished(self, name: str, kind: str, seconds: float,
                      attempts: int) -> None:
        self.tasks_running = max(0, self.tasks_running - 1)
        self.tasks_done += 1
        self.task_times.append(TaskTiming(name, kind, seconds, attempts))

    def task_failed_attempt(self) -> None:
        """A submitted attempt ended without producing a result."""
        self.tasks_running = max(0, self.tasks_running - 1)

    def quarantine(self, name: str, kind: str, reason: str,
                   attempts: int, classification: str = "permanent") -> None:
        """Permanently give up on one poisoned task."""
        logger.error("quarantined %s after %d attempt(s) [%s]: %s",
                     name, attempts, classification, reason)
        self.quarantined.append({
            "task": name, "kind": kind, "reason": reason,
            "attempts": attempts, "class": classification,
        })

    def degrade(self, workload: str, reason: str, failures: int) -> None:
        """Trip the circuit breaker for one workload."""
        logger.error("workload %s DEGRADED after %d permanent failure(s): %s",
                     workload, failures, reason)
        self.degraded.append({
            "workload": workload, "reason": reason, "failures": failures,
        })

    def is_degraded(self, workload: str) -> bool:
        return any(entry["workload"] == workload for entry in self.degraded)

    def finish(self) -> None:
        self.wall_seconds = time.perf_counter() - self._started

    # -- derived ------------------------------------------------------------

    @property
    def tasks_pending(self) -> int:
        return max(0, self.tasks_total - self.tasks_done - len(self.quarantined))

    def mean_task_seconds(self) -> float:
        if not self.task_times:
            return 0.0
        return sum(t.seconds for t in self.task_times) / len(self.task_times)

    def eta_seconds(self) -> float | None:
        """Estimated seconds until the grid drains (None before any data)."""
        if not self.task_times:
            return None
        return self.mean_task_seconds() * self.tasks_pending / max(1, self.jobs)

    def summary(self) -> dict[str, Any]:
        """Flat snapshot of every counter (the exec-stats payload)."""
        eta = self.eta_seconds()
        return {
            "jobs": self.jobs,
            "tasks_total": self.tasks_total,
            "tasks_queued": self.tasks_queued,
            "tasks_running": self.tasks_running,
            "tasks_done": self.tasks_done,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "traces_built": self.traces_built,
            "trace_disk_hits": self.trace_disk_hits,
            "sims_run": self.sims_run,
            "batched_cells": self.batched_cells,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_crashes": self.worker_crashes,
            "corrupt_traces": self.corrupt_traces,
            "corrupt_results": self.corrupt_results,
            "resumed_cells": self.resumed_cells,
            "degraded": len(self.degraded),
            "degraded_workloads": [
                entry["workload"] for entry in self.degraded
            ],
            "quarantined": len(self.quarantined),
            "quarantined_tasks": [entry["task"] for entry in self.quarantined],
            "mean_task_seconds": self.mean_task_seconds(),
            "eta_seconds": eta if eta is not None else 0.0,
            "wall_seconds": self.wall_seconds,
        }

    def render(self) -> str:
        """Human-readable statistics table."""
        from repro.harness.report import format_exec_stats

        return format_exec_stats(self.summary())

    # -- persistence --------------------------------------------------------

    def persist(self, path: str | Path) -> None:
        """Write a JSON snapshot (summary + per-task timings).

        The write is atomic (temp file + fsync + ``os.replace``): a crash
        mid-flush leaves the previous snapshot intact rather than a
        truncated JSON file that would poison ``repro exec-stats``.
        """
        document = {
            "summary": self.summary(),
            "quarantined": self.quarantined,
            "degraded": self.degraded,
            "task_times": [asdict(timing) for timing in self.task_times],
        }
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        temporary = target.with_name(f".{target.name}.{os.getpid()}.tmp")
        try:
            with open(temporary, "w") as handle:
                handle.write(json.dumps(document, indent=2, sort_keys=True))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temporary, target)
        finally:
            temporary.unlink(missing_ok=True)


def load_stats(path: str | Path) -> dict[str, Any]:
    """Read back a snapshot written by :meth:`ExecTelemetry.persist`."""
    return json.loads(Path(path).read_text())
