"""Command-line interface.

Everything the examples and benches do, driveable from a shell::

    python -m repro list workloads
    python -m repro list prefetchers
    python -m repro run --workload stencil-default --prefetcher cbws+sms
    python -m repro figure 14 --budget-fraction 0.3 --jobs 4
    python -m repro table 3
    python -m repro trace --workload nw --out nw.trace
    python -m repro inspect nw.trace
    python -m repro ingest app.champsimtrace.xz --name app --report
    python -m repro trace info ext:app
    python -m repro check --budget 30s --seed 7
    python -m repro exec-stats
    python -m repro serve --port 8321 --jobs 4
    python -m repro submit --workload nw --prefetcher cbws
    python -m repro loadgen --quick

Grid commands run through :mod:`repro.exec`: ``--jobs N`` simulates N
cells concurrently on a worker pool (``--jobs 0``, the default, uses
every core; ``--jobs 1`` runs in-process), and finished cells land in a
content-addressed result cache under ``--cache-dir`` (default
``.repro-cache``, or ``$REPRO_CACHE_DIR``) so re-running a figure with
unchanged inputs is a pure cache read.  ``--no-result-cache`` disables
the replay; ``exec-stats`` reports on the last recorded run.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro import obs
from repro.common.errors import ReproError
from repro.harness.registry import PAPER_PREFETCHER_ORDER
from repro.harness.runner import GridRunner
from repro.sim.results import DemandClass
from repro.trace.io import read_trace, write_trace
from repro.workloads import ALL_WORKLOADS, REGISTRY, build_trace, get_workload


def _default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR", ".repro-cache")


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", default=_default_cache_dir(), metavar="DIR",
        help="trace + result cache directory (default .repro-cache, "
             "or $REPRO_CACHE_DIR)",
    )


def _add_profile_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", action="store_true",
        help="enable repro.obs probes and print the phase/counter "
             "profile after the command",
    )


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    _add_profile_argument(parser)
    parser.add_argument(
        "--budget-fraction", type=float, default=1.0,
        help="fraction of each workload's default access budget (default 1.0)",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload footprint/trip-count scale factor (default 1.0)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload data seed (default 0)",
    )
    parser.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="worker processes for grid execution "
             "(0 = all cores, 1 = in-process; default 0)",
    )
    parser.add_argument(
        "--engine", choices=("auto", "fast", "reference", "batch"),
        default="auto",
        help="simulation engine tier: auto batches a workload's cells "
             "when enough of them share its trace; fast/reference/batch "
             "force one tier (default auto)",
    )
    _add_cache_arguments(parser)
    parser.add_argument(
        "--no-result-cache", action="store_true",
        help="do not reuse or store cached simulation results",
    )
    parser.add_argument(
        "--run-id", default=None, metavar="ID",
        help="identifier for the write-ahead run journal "
             "(default: a fresh timestamped id)",
    )
    parser.add_argument(
        "--resume", default=None, metavar="RUN_ID",
        help="resume a journaled prior run: completed cells replay from "
             "the result cache, only the remainder executes",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail instead of completing with DEGRADED holes when any "
             "cell is quarantined",
    )


def _runner(args: argparse.Namespace) -> GridRunner:
    return GridRunner(
        scale=args.scale,
        budget_fraction=args.budget_fraction,
        seed=args.seed,
        cache_dir=args.cache_dir,
        jobs=None if args.jobs == 0 else args.jobs,
        result_cache=False if args.no_result_cache else None,
        run_id=getattr(args, "run_id", None),
        resume=getattr(args, "resume", None),
        strict=getattr(args, "strict", False),
        engine=getattr(args, "engine", "auto"),
    )


def _cmd_list(args: argparse.Namespace) -> int:
    if args.what == "workloads":
        print(f"{'name':<26} {'suite':<15} {'group':<5} description")
        print("-" * 88)
        for name in ALL_WORKLOADS:
            spec = REGISTRY[name]
            print(f"{spec.name:<26} {spec.suite:<15} {spec.group:<5} "
                  f"{spec.description}")
        for record in _ingested_records():
            print(f"{record.workload:<26} {'external':<15} {'ext':<5} "
                  f"ingested {record.format} trace "
                  f"({record.accesses} accesses, "
                  f"{record.coverage:.0%} marker coverage)")
    else:
        for name in PAPER_PREFETCHER_ORDER:
            print(name)
    return 0


#: Exit code of a run that completed, but with DEGRADED holes.
EXIT_DEGRADED = 3


def _ingested_records():
    """Rows of the ingest store, or [] (with a warning) when unreadable."""
    from repro.common.errors import IngestRegistryError
    from repro.ingest.store import IngestStore

    try:
        return IngestStore().records()
    except IngestRegistryError as error:
        print(f"warning: {error}", file=sys.stderr)
        return []


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.harness.registry import make_prefetcher

    runner = _runner(args)
    prefetchers = (
        PAPER_PREFETCHER_ORDER if args.prefetcher == "all"
        else [args.prefetcher]
    )
    workloads = ALL_WORKLOADS if args.workload == "all" else [args.workload]
    # Validate names before any work: a typo must fail loudly up front,
    # not get quarantined into a DEGRADED hole by the lenient scheduler.
    for workload in workloads:
        get_workload(workload)
    for name in prefetchers:
        make_prefetcher(name)

    grid = runner.run_grid(workloads, prefetchers)
    header = (f"{'workload':<26} {'prefetcher':<12} {'IPC':>6} {'MPKI':>8} "
              f"{'timely':>7} {'sw':>6} {'wrong':>6}")
    print(header)
    print("-" * len(header))
    for workload in workloads:
        for name in prefetchers:
            result = grid.get(workload, name)
            if result.degraded:
                print(f"{workload:<26} {name:<12} DEGRADED")
                continue
            print(
                f"{workload:<26} {name:<12} {result.ipc:6.3f} "
                f"{result.mpki:8.2f} "
                f"{result.class_fraction(DemandClass.TIMELY):6.1%} "
                f"{result.class_fraction(DemandClass.SHORTER_WAITING):6.1%} "
                f"{result.wrong_fraction:6.1%}"
            )
    if runner.last_run_id is not None:
        print(f"\nrun journal: {runner.last_run_id} "
              f"(resume with --resume {runner.last_run_id})")
    if args.json is not None:
        from repro.harness.export import write_json

        write_json(
            grid, args.json,
            budget_fraction=args.budget_fraction,
            scale=args.scale,
            seed=args.seed,
        )
        print(f"\nwrote {args.json}")
    if grid.degraded_cells:
        print(f"warning: {len(grid.degraded_cells)} DEGRADED cell(s); "
              "see `repro exec-stats` for the quarantine report",
              file=sys.stderr)
        return EXIT_DEGRADED
    return 0


_FIGURES = {
    "1": "figure1",
    "5": "figure5",
    "12": "figure12",
    "13": "figure13",
    "14": "figure14",
    "15": "figure15",
}

_TABLES = {"1": "table1", "3": "table3"}


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.harness import experiments

    function = getattr(experiments, _FIGURES[args.number])
    result = function(_runner(args))
    print(result.render())
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.harness import experiments

    if args.number == "3":
        print(experiments.table3().render())
    else:
        print(experiments.table1(_runner(args)).render())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.action == "info":
        return _cmd_trace_info(args)
    if args.workload is None or args.out is None:
        print("error: repro trace requires --workload and --out "
              "(or use `repro trace info <name>`)", file=sys.stderr)
        return 2
    spec = get_workload(args.workload)
    trace = build_trace(
        spec,
        scale=args.scale,
        max_accesses=args.accesses,
        seed=args.seed,
    )
    write_trace(trace, args.out)
    stats = trace.stats()
    print(f"wrote {args.out}: {len(trace.events)} events, "
          f"{stats.memory_accesses} accesses, "
          f"{stats.blocks} block instances")
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    """Dump the registry row of one stored (ingested) trace."""
    from repro.ingest.store import IngestStore

    if args.name is None:
        print("error: repro trace info requires a trace name "
              "(bare or ext:-prefixed)", file=sys.stderr)
        return 2
    store = IngestStore()
    record = store.get(args.name)
    print(f"workload:          {record.workload}")
    print(f"digest:            {record.digest}")
    print(f"file:              {store.root / record.file}")
    print(f"format:            {record.format}")
    print(f"source:            {record.source}")
    print(f"instructions:      {record.instructions}")
    print(f"events:            {record.events}")
    print(f"memory accesses:   {record.accesses}")
    print(f"marker coverage:   {record.coverage:.1%}")
    print(f"block instances:   {record.block_instances} "
          f"({record.block_ids} static blocks)")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Convert an external trace into a registered ``ext:`` workload."""
    from repro.ingest.formats import detect_format
    from repro.ingest.recover import RecoveryConfig
    from repro.ingest.store import IngestStore

    fmt = args.format or detect_format(args.file)
    config = RecoveryConfig(
        min_iterations=args.min_iterations,
        infer_backedges=(fmt == "csv"),
    )
    record, stats = IngestStore().ingest(
        args.file, name=args.name, fmt=fmt, config=config, force=args.force,
    )
    print(f"ingested {args.file} as {record.workload}")
    print(f"  digest:  {record.digest}")
    print(f"  format:  {record.format}; {record.instructions} instructions, "
          f"{record.accesses} accesses, {record.events} events")
    print(f"  markers: {record.coverage:.1%} coverage, "
          f"{record.block_instances} block instance(s), "
          f"{record.block_ids} static id(s)")
    if args.report:
        print()
        print(stats.render())
    print(f"\nrun it: repro run --workload {record.workload} "
          "--prefetcher all")
    return 0


def _cmd_exec_stats(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.common.errors import ExecError
    from repro.exec.telemetry import load_stats
    from repro.harness.report import format_exec_stats

    path = Path(args.cache_dir) / "exec-stats.json"
    if not path.exists():
        raise ExecError(
            f"no recorded execution statistics at {path}; run a figure or "
            "grid first (statistics persist next to the cache)"
        )
    document = load_stats(path)
    print(format_exec_stats(document.get("summary", {})))
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.exec.journal import RUNS_DIRNAME, list_runs
    from repro.harness.report import format_run_list

    def warn_skip(run_id: str, reason: str) -> None:
        print(f"warning: skipping run {run_id!r}: {reason}", file=sys.stderr)

    summaries = list_runs(Path(args.cache_dir) / RUNS_DIRNAME,
                          on_skip=warn_skip)
    if not summaries:
        print(f"no journaled runs under {args.cache_dir}")
        return 0
    print(format_run_list(summaries))
    return 0


def _parse_size(text: str) -> int:
    """Parse a byte size: ``4096``, ``64K``, ``500M``, ``2G`` (binary)."""
    from repro.common.errors import ConfigError

    raw = text.strip().upper()
    scale = 1
    for suffix, factor in (("K", 1 << 10), ("M", 1 << 20),
                           ("G", 1 << 30), ("T", 1 << 40)):
        if raw.endswith(suffix):
            scale, raw = factor, raw[:-1]
            break
    try:
        value = float(raw)
    except ValueError:
        raise ConfigError(
            f"cannot parse size {text!r}; use forms like 4096, 64K, 500M, 2G"
        ) from None
    if value < 0:
        raise ConfigError(f"size must be non-negative, got {text!r}")
    return int(value * scale)


def _parse_age(text: str) -> float:
    """Parse an age: ``30``/``30s`` seconds, ``10m``, ``6h``, ``7d``."""
    from repro.common.errors import ConfigError

    raw = text.strip().lower()
    scale = 1.0
    for suffix, factor in (("s", 1.0), ("m", 60.0), ("h", 3600.0),
                           ("d", 86400.0), ("w", 604800.0)):
        if raw.endswith(suffix):
            scale, raw = factor, raw[:-1]
            break
    try:
        seconds = float(raw) * scale
    except ValueError:
        raise ConfigError(
            f"cannot parse age {text!r}; use forms like 30, 10m, 6h, 7d"
        ) from None
    if seconds < 0:
        raise ConfigError(f"age must be non-negative, got {text!r}")
    return seconds


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.exec.cache import ResultCache

    results_root = Path(args.cache_dir) / "results"
    if not results_root.is_dir():
        print(f"no result cache under {args.cache_dir}")
        return 0
    max_bytes = None if args.max_bytes is None else _parse_size(args.max_bytes)
    max_age = None if args.max_age is None else _parse_age(args.max_age)
    stats = ResultCache(results_root).gc(
        max_bytes=max_bytes,
        max_age_seconds=max_age,
        dry_run=args.dry_run,
    )
    verb = "would evict" if args.dry_run else "evicted"
    print(f"scanned {stats.scanned} entr(ies), {stats.bytes_total:,} bytes")
    print(f"{verb} {stats.evicted} ({stats.evicted_by_age} by age, "
          f"{stats.evicted_by_size} by size), "
          f"reclaiming {stats.bytes_reclaimed:,} bytes")
    print(f"kept {stats.kept} entr(ies), {stats.bytes_after:,} bytes")
    if max_bytes is None and max_age is None:
        print("note: no --max-bytes / --max-age bound given, so this was "
              "a census only")
    return 0


def _campaign_progress(stream=None):
    """Per-cell progress callback for campaign runs (tty-aware)."""
    stream = stream if stream is not None else sys.stderr
    interactive = getattr(stream, "isatty", lambda: False)()

    def progress(wave: int, done: int, total: int) -> None:
        if interactive:
            end = "\n" if done == total else "\r"
            print(f"  wave {wave}: {done}/{total} cell(s)",
                  end=end, file=stream, flush=True)
        elif done == total:
            print(f"  wave {wave}: {total} cell(s) done", file=stream)

    return progress


def _campaign_summary(outcome, artifacts: dict) -> None:
    flips = [interval for interval in outcome.intervals
             if interval.reason == "winner-flip"]
    print(f"campaign {outcome.campaign_id}: {outcome.status}")
    print(f"  spec:        {outcome.spec.name} "
          f"(fingerprint {outcome.fingerprint[:12]})")
    print(f"  waves:       {len(outcome.waves)}")
    print(f"  cells:       {outcome.cells_total} unique, "
          f"{len(outcome.quarantined_keys)} quarantined")
    print(f"  refinement:  {len(outcome.intervals)} interval(s), "
          f"{len(flips)} winner flip(s)")
    for interval in flips:
        context = ", ".join(f"{k}={v}" for k, v in interval.context)
        print(f"    flip on {interval.axis} in [{interval.lo}, "
              f"{interval.hi}] -> sampled {interval.midpoint}  "
              f"({interval.workload}; {context})")
    seconds = outcome.execution.get("wall_seconds")
    if seconds is not None:
        print(f"  wall time:   {seconds:.2f}s "
              f"({outcome.execution.get('sims_run', 0)} simulated, "
              f"{outcome.execution.get('cache_hits', 0)} cache hit(s))")
    for name in sorted(artifacts):
        print(f"  {name + ':':<12} {artifacts[name]}")


def _recover_campaign_spec(args: argparse.Namespace):
    """The spec for an existing campaign: --spec file, else the journal."""
    from repro.campaign.runner import campaign_dir, replay_campaign
    from repro.campaign.spec import load_spec, parse_spec
    from repro.common.errors import CampaignError

    if getattr(args, "spec", None) is not None:
        return load_spec(args.spec)
    journal = campaign_dir(args.cache_dir, args.campaign_id) / "journal.jsonl"
    if not journal.is_file():
        raise CampaignError(
            f"no campaign {args.campaign_id!r} under {args.cache_dir}; "
            "see `repro campaign status`"
        )
    state = replay_campaign(journal)
    if state.spec_document is None:
        raise CampaignError(
            f"campaign {args.campaign_id!r} has no journaled spec "
            "(torn journal head?); pass the original file via --spec"
        )
    return parse_spec(state.spec_document)


#: Exit code of a campaign that completed with quarantined holes.
EXIT_CAMPAIGN_DEGRADED = 3


def _run_and_report_campaign(spec, args: argparse.Namespace, *,
                             resume: bool,
                             campaign_id: str | None) -> int:
    from repro.campaign.report import write_report
    from repro.campaign.runner import run_campaign

    outcome = run_campaign(
        spec,
        args.cache_dir,
        campaign_id=campaign_id,
        resume=resume,
        jobs=None if args.jobs == 0 else args.jobs,
        executor=args.executor,
        serve_host=args.host,
        serve_port=args.port,
        progress=_campaign_progress(),
    )
    artifacts = write_report(outcome)
    _campaign_summary(outcome, artifacts)
    if outcome.status != "complete":
        print(f"warning: campaign finished {outcome.status}; resume with "
              f"`repro campaign resume {outcome.campaign_id}`",
              file=sys.stderr)
        return EXIT_CAMPAIGN_DEGRADED
    return 0


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign.spec import load_spec

    return _run_and_report_campaign(
        load_spec(args.spec), args,
        resume=False, campaign_id=args.id,
    )


def _cmd_campaign_resume(args: argparse.Namespace) -> int:
    return _run_and_report_campaign(
        _recover_campaign_spec(args), args,
        resume=True, campaign_id=args.campaign_id,
    )


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.campaign.runner import list_campaigns

    rows = list_campaigns(args.cache_dir)
    if not rows:
        print(f"no campaigns under {args.cache_dir}")
        return 0
    header = (f"{'campaign':<28} {'status':<12} {'waves':>5} {'done':>11} "
              f"{'quar':>4} {'resumes':>7}")
    print(header)
    print("-" * len(header))
    for row in rows:
        done = f"{row['cells_done']}/{row['cells_planned']}"
        print(f"{row['campaign_id']:<28} {row['status']:<12} "
              f"{row['waves']:>5} {done:>11} {row['quarantined']:>4} "
              f"{row['resumes']:>7}")
    return 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    """Regenerate a finished campaign's report from journal + cache.

    This is a resume under the hood: every journaled cell replays from
    the content-addressed cache, so nothing simulates unless the cache
    was evicted from under the campaign.
    """
    return _run_and_report_campaign(
        _recover_campaign_spec(args), args,
        resume=True, campaign_id=args.campaign_id,
    )


def _cmd_campaign_bench(args: argparse.Namespace) -> int:
    from repro.campaign.bench import render_campaign_bench, run_campaign_bench
    from repro.harness.bench import write_bench

    document = run_campaign_bench(
        jobs=args.jobs,
        progress=(None if args.no_progress
                  else lambda phase: print(f"  campaign bench: {phase}",
                                           file=sys.stderr)),
    )
    write_bench(document, args.out)
    print(render_campaign_bench(document))
    print(f"\nwrote {args.out}")
    return 0 if document["status"] == "complete" else 1


def _cmd_verify_artifacts(args: argparse.Namespace) -> int:
    """Walk the cache directory and verify every artifact's integrity.

    Trace files are checked against their embedded payload CRC, cached
    results against their schema + checksum envelope, and run journals
    for torn tails.  Exit 0 when everything verifies; exit 1 and list
    the offenders otherwise (``--purge`` deletes corrupt traces and
    results so the next run rebuilds them).
    """
    from pathlib import Path

    from repro.exec.cache import ResultCache
    from repro.exec.journal import RUNS_DIRNAME, list_runs
    from repro.trace.io import verify_trace_file

    root = Path(args.cache_dir)
    if not root.is_dir():
        print(f"no cache directory at {root}")
        return 0

    ok = 0
    corrupt: list[tuple[Path, str]] = []
    trace_files = sorted(root.glob("*.trace"))
    ingest_root = root / "ingest"
    if ingest_root.is_dir():
        trace_files.extend(sorted(ingest_root.glob("*.trace")))
    for path in trace_files:
        reason = verify_trace_file(path)
        if reason is None:
            ok += 1
        else:
            corrupt.append((path, reason))

    results_root = root / "results"
    if results_root.is_dir():
        cache_ok, cache_bad = ResultCache(results_root).verify()
        ok += cache_ok
        corrupt.extend(cache_bad)

    torn_runs = 0
    for summary in list_runs(root / RUNS_DIRNAME):
        if summary.torn_lines:
            torn_runs += 1
            print(f"journal {summary.run_id}: {summary.torn_lines} torn "
                  "line(s) discarded at replay (tolerated)")

    print(f"verified {ok} artifact(s): {len(corrupt)} corrupt, "
          f"{torn_runs} journal(s) with torn tails")
    if not corrupt:
        return 0
    for path, reason in corrupt:
        print(f"corrupt: {path}: {reason}", file=sys.stderr)
        if args.purge:
            Path(path).unlink(missing_ok=True)
            print(f"purged:  {path}", file=sys.stderr)
    return 0 if args.purge else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness.bench import (
        check_bench,
        embed_baseline,
        load_bench,
        render_bench,
        run_bench,
        write_bench,
    )

    document = run_bench(
        quick=args.quick,
        progress=(None if args.no_progress
                  else lambda workload: print(f"  bench: {workload}",
                                              file=sys.stderr)),
        cache_phase=not args.no_cache_phase,
        engine=args.engine,
    )

    baseline = None
    if args.baseline is not None:
        baseline = load_bench(args.baseline)
        embed_baseline(document, baseline, path=args.baseline)

    write_bench(document, args.out)
    print(render_bench(document))
    print(f"\nwrote {args.out}")

    if args.check:
        if baseline is None:
            print("error: --check requires --baseline", file=sys.stderr)
            return 2
        problems = check_bench(document, baseline,
                               tolerance=args.tolerance)
        failures = [p for p in problems if not p.startswith("note:")]
        for problem in problems:
            print(f"bench check: {problem}", file=sys.stderr)
        if failures:
            return 1
        print(f"bench check: OK (tolerance {args.tolerance:.0%})")
    return 0


def _parse_budget(text: str) -> float:
    """Parse a wall-clock budget: ``30``/``30s`` seconds, ``2m`` minutes."""
    from repro.common.errors import ConfigError

    raw = text.strip().lower()
    scale = 1.0
    if raw.endswith("m"):
        scale, raw = 60.0, raw[:-1]
    elif raw.endswith("s"):
        raw = raw[:-1]
    try:
        seconds = float(raw) * scale
    except ValueError:
        raise ConfigError(
            f"cannot parse budget {text!r}; use forms like 30, 45s, 2m"
        ) from None
    if seconds <= 0:
        raise ConfigError(f"budget must be positive, got {text!r}")
    return seconds


def _cmd_check(args: argparse.Namespace) -> int:
    """Differential verification: corpus replay, then coverage fuzzing."""
    import time
    from pathlib import Path

    from repro.check import diff, fuzz, invariants

    budget = _parse_budget(args.budget)
    requested = args.prefetcher or ["all"]
    if "all" in requested:
        names = list(diff.DIFF_PREFETCHERS)
    else:
        names = list(dict.fromkeys(requested))
    for name in names:
        if name not in diff.DIFF_PREFETCHERS:
            known = ", ".join(diff.DIFF_PREFETCHERS)
            print(f"error: no oracle for prefetcher {name!r}; known: {known}",
                  file=sys.stderr)
            return 2

    # Engine runs under `repro check` execute with invariants armed, so a
    # corpus replay also exercises the MSHR/queue/inclusion checks.
    invariants.enable()
    try:
        if args.inject is not None:
            result = fuzz.run_injection(
                args.inject, budget_seconds=budget, seed=args.seed)
            if not result.caught:
                print(f"injection {args.inject!r}: NOT caught within "
                      f"{budget:.0f}s — harness regression", file=sys.stderr)
                return 1
            print(f"injection {args.inject!r}: caught; shrunken "
                  f"counterexample has {result.counterexample_events} events")
            print(result.divergence)
            return 0

        started = time.monotonic()
        divergences: list[diff.Divergence] = []
        replayed = 0
        corpus_dir = Path(args.corpus)
        if corpus_dir.is_dir():
            for path in sorted(corpus_dir.glob("*.trace")):
                trace = read_trace(path)
                trace.validate()
                divergences.extend(diff.diff_all(trace, names=names))
                replayed += 1
        print(f"corpus: {replayed} trace(s) replayed, "
              f"{len(divergences)} divergence(s)")

        remaining = budget - (time.monotonic() - started)
        if remaining > 0 and not divergences:
            report = fuzz.run_fuzz(remaining, seed=args.seed, names=names)
            divergences.extend(report.divergences)
            print(f"fuzz: {report.iterations} iteration(s), corpus grew to "
                  f"{report.corpus_size}, {len(report.features)} feature(s), "
                  f"{len(report.divergences)} divergence(s) "
                  f"in {report.elapsed_seconds:.1f}s")
        for divergence in divergences:
            print(divergence, file=sys.stderr)
        return 1 if divergences else 0
    finally:
        invariants.disable()


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.http import main_serve

    return main_serve(args)


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster.supervisor import main_cluster

    return main_cluster(args)


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient
    from repro.serve.protocol import JobStatus, SimulateRequest
    from repro.sim.results import SimResult

    request = SimulateRequest(
        workload=args.workload,
        prefetcher=args.prefetcher,
        scale=args.scale,
        budget_fraction=args.budget_fraction,
        seed=args.seed,
    )
    client = ServeClient(args.host, args.port, timeout=args.timeout)
    if args.stream:
        view = client.submit(request)
        terminal = None
        if view.status.terminal:
            terminal = view
        else:
            for event in client.stream_events(view.job_id,
                                              timeout=args.timeout):
                name = event.pop("_event")
                if name == "terminal":
                    from repro.serve.protocol import JobView

                    terminal = JobView.from_dict(event["job"])
                    break
                print(f"  event: {name} {event.get('status', '')}",
                      file=sys.stderr)
        view = terminal if terminal is not None else client.job(view.job_id)
    else:
        view = client.run(request, timeout=args.timeout)

    flags = []
    if view.deduplicated:
        flags.append("deduplicated")
    if view.cache_hit:
        flags.append("cache hit")
    suffix = f"  [{', '.join(flags)}]" if flags else ""
    if view.status is not JobStatus.DONE:
        print(f"job {view.job_id}: {view.status.value}: {view.error}",
              file=sys.stderr)
        return 1
    print(SimResult.from_dict(view.result).summary() + suffix)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.harness.bench import write_bench
    from repro.serve.loadgen import (
        LoadgenConfig,
        run_cluster_loadgen,
        run_loadgen,
    )

    if args.quick and args.cluster:
        config = LoadgenConfig.quick_cluster(
            host=args.host, port=args.port, seed=args.seed)
    elif args.quick:
        config = LoadgenConfig.quick(
            host=args.host, port=args.port, seed=args.seed)
    else:
        config = LoadgenConfig(
            host=args.host,
            port=args.port,
            requests=args.requests,
            concurrency=args.concurrency,
            duplicate_ratio=args.duplicate_ratio,
            seed=args.seed,
            workloads=tuple(args.workloads.split(",")),
            prefetchers=tuple(args.prefetchers.split(",")),
            budget_fraction=args.budget_fraction,
            scale=args.scale,
            cover_grid=args.cluster,
        )
    out = args.out
    if args.cluster:
        if out == "BENCH_serve.json":
            out = "BENCH_cluster.json"
        document = run_cluster_loadgen(config, announce=print)
    else:
        document = run_loadgen(config, announce=print)
    write_bench(document, out)
    print(f"\nwrote {out}")
    return 1 if document["totals"]["failed"] else 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    trace = read_trace(args.path)
    trace.validate()
    stats = trace.stats()
    print(f"name:              {trace.name}")
    print(f"events:            {len(trace.events)}")
    print(f"instructions:      {stats.instructions}")
    print(f"memory accesses:   {stats.memory_accesses} "
          f"({stats.loads} loads, {stats.stores} stores)")
    print(f"block instances:   {stats.blocks} "
          f"({stats.distinct_block_ids} static blocks)")
    print(f"loop fraction:     {stats.loop_fraction:.1%}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Loop-Aware Memory Prefetching Using Code "
            "Block Working Sets' (MICRO 2014)"
        ),
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list workloads or prefetchers")
    list_parser.add_argument(
        "what", choices=["workloads", "prefetchers"])
    _add_cache_arguments(list_parser)
    list_parser.set_defaults(handler=_cmd_list)

    ingest_parser = subparsers.add_parser(
        "ingest",
        help="convert an external trace (ChampSim or pc,address CSV; "
             "optionally .xz/.gz) into a registered ext:<name> workload")
    ingest_parser.add_argument(
        "file", help="trace file (.champsimtrace or .csv, "
                     "optionally .xz/.gz compressed)")
    ingest_parser.add_argument(
        "--name", default=None, metavar="N",
        help="workload name: the trace becomes ext:<N> "
             "(default: derived from the file name)")
    ingest_parser.add_argument(
        "--format", choices=["champsim", "csv"], default=None,
        help="decoder to use (default: inferred from the file name)")
    ingest_parser.add_argument(
        "--report", action="store_true",
        help="print the marker-recovery coverage report")
    ingest_parser.add_argument(
        "--force", action="store_true",
        help="allow replacing an existing name with different content "
             "(cached results keyed on the old digest are abandoned)")
    ingest_parser.add_argument(
        "--min-iterations", type=int, default=2, metavar="K",
        help="back-edge traversals before a loop head starts opening "
             "blocks (default 2)")
    _add_cache_arguments(ingest_parser)
    ingest_parser.set_defaults(handler=_cmd_ingest)

    run_parser = subparsers.add_parser(
        "run", help="simulate workload(s) against prefetcher(s)")
    run_parser.add_argument(
        "--workload", default="all",
        help="workload name or 'all' (default all)")
    run_parser.add_argument(
        "--prefetcher", default="all",
        help="prefetcher name or 'all' (default all)")
    run_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the results as JSON to PATH")
    _add_runner_arguments(run_parser)
    run_parser.set_defaults(handler=_cmd_run)

    figure_parser = subparsers.add_parser(
        "figure", help="reproduce one figure of the paper")
    figure_parser.add_argument("number", choices=sorted(_FIGURES))
    _add_runner_arguments(figure_parser)
    figure_parser.set_defaults(handler=_cmd_figure)

    table_parser = subparsers.add_parser(
        "table", help="reproduce one table of the paper")
    table_parser.add_argument("number", choices=sorted(_TABLES))
    _add_runner_arguments(table_parser)
    table_parser.set_defaults(handler=_cmd_table)

    trace_parser = subparsers.add_parser(
        "trace",
        help="generate and save a workload trace, or `trace info <name>` "
             "to dump a stored ingested trace")
    trace_parser.add_argument(
        "action", nargs="?", choices=["info"],
        help="'info' dumps the registry row of a stored ingested trace")
    trace_parser.add_argument(
        "name", nargs="?",
        help="stored trace name for 'info' (bare or ext:-prefixed)")
    trace_parser.add_argument("--workload", default=None)
    trace_parser.add_argument("--out", default=None)
    trace_parser.add_argument(
        "--accesses", type=int, default=None,
        help="memory-access budget (default: the workload's own)")
    _add_runner_arguments(trace_parser)
    trace_parser.set_defaults(handler=_cmd_trace)

    inspect_parser = subparsers.add_parser(
        "inspect", help="validate and summarize a saved trace")
    inspect_parser.add_argument("path")
    inspect_parser.set_defaults(handler=_cmd_inspect)

    bench_parser = subparsers.add_parser(
        "bench",
        help="replay the pinned hot-path benchmark grid and emit "
             "schema-versioned BENCH_sim_hotpath.json")
    bench_parser.add_argument(
        "--quick", action="store_true",
        help="run the pinned quick subset (CI smoke) instead of the "
             "full fig14 grid")
    bench_parser.add_argument(
        "--out", default="BENCH_sim_hotpath.json", metavar="PATH",
        help="where to write the JSON document "
             "(default BENCH_sim_hotpath.json)")
    bench_parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="prior BENCH_*.json to embed and compare against")
    bench_parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) on throughput regression beyond --tolerance "
             "or on result-digest drift vs --baseline")
    bench_parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional events/sec regression for --check "
             "(default 0.30)")
    bench_parser.add_argument(
        "--no-cache-phase", action="store_true",
        help="skip the cold/warm result-cache replay phase")
    bench_parser.add_argument(
        "--no-progress", action="store_true",
        help="suppress per-workload progress lines on stderr")
    bench_parser.add_argument(
        "--engine", choices=("fast", "batch"), default="fast",
        help="simulation engine to benchmark: 'fast' times each cell "
             "individually, 'batch' times one batched run per workload "
             "over the extended prefetcher set (default fast)")
    _add_profile_argument(bench_parser)
    bench_parser.set_defaults(handler=_cmd_bench)

    check_parser = subparsers.add_parser(
        "check",
        help="differential verification: replay the frozen corpus against "
             "the golden oracles, then fuzz with the remaining budget")
    check_parser.add_argument(
        "--budget", default="30s", metavar="TIME",
        help="wall-clock budget, e.g. 30, 45s, 2m (default 30s)")
    check_parser.add_argument(
        "--seed", type=int, default=0,
        help="fuzzer seed (default 0)")
    check_parser.add_argument(
        "--prefetcher", action="append", default=None, metavar="NAME",
        help="verify one prefetcher by name; repeat the flag to verify "
             "several (e.g. --prefetcher pangloss --prefetcher pythia); "
             "'all' or omitting the flag verifies every oracle-backed "
             "prefetcher")
    check_parser.add_argument(
        "--corpus", default="tests/corpus", metavar="DIR",
        help="frozen trace corpus to replay first (default tests/corpus)")
    check_parser.add_argument(
        "--inject", default=None, metavar="NAME",
        help="fault-injection self-test: verify the harness catches the "
             "named known-bad implementation (e.g. cbws-fifo-off-by-one)")
    check_parser.set_defaults(handler=_cmd_check)

    stats_parser = subparsers.add_parser(
        "exec-stats",
        help="show telemetry of the last recorded grid execution")
    _add_cache_arguments(stats_parser)
    stats_parser.set_defaults(handler=_cmd_exec_stats)

    runs_parser = subparsers.add_parser(
        "runs", help="inspect journaled runs")
    runs_parser.add_argument("action", choices=["list"])
    _add_cache_arguments(runs_parser)
    runs_parser.set_defaults(handler=_cmd_runs)

    cache_parser = subparsers.add_parser(
        "cache", help="manage the content-addressed result cache")
    cache_sub = cache_parser.add_subparsers(dest="action", required=True)
    gc_parser = cache_sub.add_parser(
        "gc",
        help="bound the result cache by size and/or age "
             "(oldest entries evicted first; eviction is always safe — "
             "a future miss recomputes)")
    gc_parser.add_argument(
        "--max-bytes", default=None, metavar="SIZE",
        help="evict oldest entries until the cache fits SIZE "
             "(e.g. 500M, 2G)")
    gc_parser.add_argument(
        "--max-age", default=None, metavar="AGE",
        help="evict entries older than AGE (e.g. 6h, 7d)")
    gc_parser.add_argument(
        "--dry-run", action="store_true",
        help="report what would be evicted without deleting anything")
    _add_cache_arguments(gc_parser)
    gc_parser.set_defaults(handler=_cmd_cache_gc)

    def _add_campaign_exec_arguments(
            parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--jobs", type=int, default=0, metavar="N",
            help="worker processes for the grid executor "
                 "(0 = all cores, 1 = in-process; default 0)")
        parser.add_argument(
            "--executor", choices=["grid", "serve"], default="grid",
            help="run cells on the local grid engine (default) or drive "
                 "a running `repro serve` endpoint")
        parser.add_argument(
            "--host", default="127.0.0.1",
            help="serve-executor server address")
        parser.add_argument(
            "--port", type=int, default=8321,
            help="serve-executor server port (default 8321)")
        _add_cache_arguments(parser)
        _add_profile_argument(parser)

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="journaled, resumable parameter-space sweeps with adaptive "
             "refinement")
    campaign_sub = campaign_parser.add_subparsers(dest="action",
                                                  required=True)

    campaign_run = campaign_sub.add_parser(
        "run", help="execute a sweep spec (.toml or .json)")
    campaign_run.add_argument("spec", help="path to the campaign spec file")
    campaign_run.add_argument(
        "--id", default=None, metavar="ID",
        help="campaign identifier (default: a fresh timestamped id)")
    _add_campaign_exec_arguments(campaign_run)
    campaign_run.set_defaults(handler=_cmd_campaign_run)

    campaign_resume = campaign_sub.add_parser(
        "resume",
        help="re-attach to an interrupted campaign; journaled cells "
             "replay from the cache, only the remainder executes")
    campaign_resume.add_argument("campaign_id", metavar="ID")
    campaign_resume.add_argument(
        "--spec", default=None, metavar="PATH",
        help="original spec file (default: recovered from the journal)")
    _add_campaign_exec_arguments(campaign_resume)
    campaign_resume.set_defaults(handler=_cmd_campaign_resume)

    campaign_status = campaign_sub.add_parser(
        "status", help="list campaigns under the cache dir, newest first")
    _add_cache_arguments(campaign_status)
    campaign_status.set_defaults(handler=_cmd_campaign_status)

    campaign_report = campaign_sub.add_parser(
        "report",
        help="regenerate campaign.json / campaign.html from the journal "
             "and result cache (recomputes nothing that is cached)")
    campaign_report.add_argument("campaign_id", metavar="ID")
    campaign_report.add_argument(
        "--spec", default=None, metavar="PATH",
        help="original spec file (default: recovered from the journal)")
    _add_campaign_exec_arguments(campaign_report)
    campaign_report.set_defaults(handler=_cmd_campaign_report)

    campaign_bench = campaign_sub.add_parser(
        "bench",
        help="run the quick reference campaign and emit "
             "schema-versioned BENCH_campaign.json")
    campaign_bench.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1, in-process)")
    campaign_bench.add_argument(
        "--out", default="BENCH_campaign.json", metavar="PATH",
        help="where to write the document (default BENCH_campaign.json)")
    campaign_bench.add_argument(
        "--no-progress", action="store_true",
        help="suppress phase progress lines on stderr")
    _add_profile_argument(campaign_bench)
    campaign_bench.set_defaults(handler=_cmd_campaign_bench)

    verify_parser = subparsers.add_parser(
        "verify-artifacts",
        help="checksum-verify cached traces, results, and run journals")
    verify_parser.add_argument(
        "--purge", action="store_true",
        help="delete corrupt artifacts so the next run rebuilds them")
    _add_cache_arguments(verify_parser)
    verify_parser.set_defaults(handler=_cmd_verify_artifacts)

    serve_parser = subparsers.add_parser(
        "serve",
        help="expose the simulation grid as an HTTP API "
             "(admission control, single-flight dedup, micro-batching)")
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)")
    serve_parser.add_argument(
        "--port", type=int, default=8321,
        help="TCP port; 0 picks a free one (default 8321)")
    serve_parser.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="worker processes behind the broker "
             "(0 = all cores; default 0)")
    serve_parser.add_argument(
        "--max-pending", type=int, default=64, metavar="N",
        help="admission bound: queued+running jobs before the server "
             "answers 429 (default 64)")
    serve_parser.add_argument(
        "--batch-window", type=float, default=0.02, metavar="SECONDS",
        help="micro-batching gather window (default 0.02)")
    serve_parser.add_argument(
        "--batch-max", type=int, default=16, metavar="N",
        help="largest micro-batch submitted to the pool (default 16)")
    serve_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell simulation timeout (default: none)")
    serve_parser.add_argument(
        "--shard-name", default="broker", metavar="NAME",
        help="identity for journals/logs when run as a cluster shard "
             "(default 'broker')")
    serve_parser.add_argument(
        "--no-recover", action="store_true",
        help="skip re-admitting journaled-but-unfinished jobs on startup")
    _add_cache_arguments(serve_parser)
    serve_parser.set_defaults(handler=_cmd_serve)

    cluster_parser = subparsers.add_parser(
        "cluster",
        help="supervise N serve shards behind one consistent-hash router "
             "(health checks, crash restarts, shared result cache)")
    cluster_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)")
    cluster_parser.add_argument(
        "--port", type=int, default=8400,
        help="router TCP port; 0 picks a free one (default 8400)")
    cluster_parser.add_argument(
        "--shards", type=int, default=3, metavar="N",
        help="broker shard subprocesses (default 3)")
    cluster_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes per shard (default 1)")
    cluster_parser.add_argument(
        "--max-pending", type=int, default=64, metavar="N",
        help="per-shard admission bound (default 64)")
    cluster_parser.add_argument(
        "--cache-dir", required=True, metavar="DIR",
        help="shared result cache + journals (required: it is what lets "
             "any shard serve any cached cell)")
    cluster_parser.add_argument(
        "--chaos", action="append", default=[], metavar="SHARD:FAULTSPEC",
        help="inject a REPRO_FAULTS plan into one shard ('s1:...') or "
             "all ('*:...') on first spawn; repeatable")
    cluster_parser.add_argument(
        "--probe-interval", type=float, default=0.5, metavar="SECONDS",
        help="/readyz health-check cadence per shard (default 0.5)")
    cluster_parser.add_argument(
        "--probe-timeout", type=float, default=2.0, metavar="SECONDS",
        help="per-probe timeout before it counts as failed (default 2)")
    cluster_parser.add_argument(
        "--min-uptime", type=float, default=5.0, metavar="SECONDS",
        help="a shard dying sooner counts toward the crash-loop "
             "breaker (default 5)")
    cluster_parser.add_argument(
        "--backoff-base", type=float, default=0.5, metavar="SECONDS",
        help="base restart delay, doubled per consecutive fast crash "
             "(default 0.5)")
    cluster_parser.add_argument(
        "--backoff-cap", type=float, default=10.0, metavar="SECONDS",
        help="largest restart delay (default 10)")
    cluster_parser.add_argument(
        "--crash-loop-limit", type=int, default=5, metavar="N",
        help="consecutive fast crashes before a shard's circuit breaker "
             "opens (default 5)")
    cluster_parser.set_defaults(handler=_cmd_cluster)

    submit_parser = subparsers.add_parser(
        "submit", help="submit one simulation to a running `repro serve`")
    submit_parser.add_argument("--workload", required=True)
    submit_parser.add_argument("--prefetcher", required=True)
    submit_parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload footprint/trip-count scale factor (default 1.0)")
    submit_parser.add_argument(
        "--budget-fraction", type=float, default=1.0,
        help="fraction of the workload's access budget (default 1.0)")
    submit_parser.add_argument(
        "--seed", type=int, default=0, help="workload data seed (default 0)")
    submit_parser.add_argument(
        "--host", default="127.0.0.1", help="server address")
    submit_parser.add_argument(
        "--port", type=int, default=8321, help="server port (default 8321)")
    submit_parser.add_argument(
        "--timeout", type=float, default=600.0,
        help="seconds to wait for the result (default 600)")
    submit_parser.add_argument(
        "--stream", action="store_true",
        help="follow the job's SSE event stream instead of polling")
    submit_parser.set_defaults(handler=_cmd_submit)

    loadgen_parser = subparsers.add_parser(
        "loadgen",
        help="closed-loop load generator against a running `repro serve`; "
             "emits schema-versioned BENCH_serve.json")
    loadgen_parser.add_argument(
        "--host", default="127.0.0.1", help="server address")
    loadgen_parser.add_argument(
        "--port", type=int, default=8321, help="server port (default 8321)")
    loadgen_parser.add_argument(
        "--quick", action="store_true",
        help="the pinned CI smoke shape (12 requests, duplicate-heavy)")
    loadgen_parser.add_argument(
        "--cluster", action="store_true",
        help="cluster mode: failover-tolerant retry clients, result "
             "digests, availability; emits BENCH_cluster.json")
    loadgen_parser.add_argument(
        "--requests", type=int, default=40,
        help="plan size before paired duplicates (default 40)")
    loadgen_parser.add_argument(
        "--concurrency", type=int, default=4,
        help="closed-loop worker threads (default 4)")
    loadgen_parser.add_argument(
        "--duplicate-ratio", type=float, default=0.25,
        help="fraction of items submitted twice back-to-back to "
             "exercise single-flight (default 0.25)")
    loadgen_parser.add_argument(
        "--seed", type=int, default=0,
        help="request-mix seed (default 0)")
    loadgen_parser.add_argument(
        "--workloads", default="nw,stencil-default",
        help="comma-separated workload mix")
    loadgen_parser.add_argument(
        "--prefetchers", default="no-prefetch,stride,cbws",
        help="comma-separated prefetcher mix")
    loadgen_parser.add_argument(
        "--budget-fraction", type=float, default=0.05,
        help="budget fraction of every request (default 0.05)")
    loadgen_parser.add_argument(
        "--scale", type=float, default=1.0,
        help="scale factor of every request (default 1.0)")
    loadgen_parser.add_argument(
        "--out", default="BENCH_serve.json", metavar="PATH",
        help="where to write the document (default BENCH_serve.json)")
    loadgen_parser.set_defaults(handler=_cmd_loadgen)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.exec import faults

    faults.install_from_env()
    parser = build_parser()
    args = parser.parse_args(argv)
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is not None:
        # Export the ingest-store location so exec-pool workers, serve
        # shards, and cluster subprocesses resolve ext: workloads against
        # the same store as this process.  An explicit env var wins.
        os.environ.setdefault(
            "REPRO_INGEST_STORE", os.path.join(cache_dir, "ingest"))
    profiling = getattr(args, "profile", False)
    if profiling:
        obs.enable()
    try:
        code = args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        # Workers flush the journal per record (fsync'd) and telemetry in
        # their own finally blocks, so the interrupt just needs the
        # conventional exit status.
        print("interrupted", file=sys.stderr)
        return 130
    if profiling:
        print()
        print(obs.render())
    return code


if __name__ == "__main__":
    sys.exit(main())
