"""Command-line interface.

Everything the examples and benches do, driveable from a shell::

    python -m repro list workloads
    python -m repro list prefetchers
    python -m repro run --workload stencil-default --prefetcher cbws+sms
    python -m repro figure 14 --budget-fraction 0.3 --jobs 4
    python -m repro table 3
    python -m repro trace --workload nw --out nw.trace
    python -m repro inspect nw.trace
    python -m repro exec-stats

Grid commands run through :mod:`repro.exec`: ``--jobs N`` simulates N
cells concurrently on a worker pool (``--jobs 0``, the default, uses
every core; ``--jobs 1`` runs in-process), and finished cells land in a
content-addressed result cache under ``--cache-dir`` (default
``.repro-cache``, or ``$REPRO_CACHE_DIR``) so re-running a figure with
unchanged inputs is a pure cache read.  ``--no-result-cache`` disables
the replay; ``exec-stats`` reports on the last recorded run.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.common.errors import ReproError
from repro.harness.registry import PAPER_PREFETCHER_ORDER
from repro.harness.runner import GridRunner
from repro.sim.results import DemandClass
from repro.trace.io import read_trace, write_trace
from repro.workloads import ALL_WORKLOADS, REGISTRY, build_trace, get_workload


def _default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR", ".repro-cache")


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", default=_default_cache_dir(), metavar="DIR",
        help="trace + result cache directory (default .repro-cache, "
             "or $REPRO_CACHE_DIR)",
    )


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--budget-fraction", type=float, default=1.0,
        help="fraction of each workload's default access budget (default 1.0)",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload footprint/trip-count scale factor (default 1.0)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload data seed (default 0)",
    )
    parser.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="worker processes for grid execution "
             "(0 = all cores, 1 = in-process; default 0)",
    )
    _add_cache_arguments(parser)
    parser.add_argument(
        "--no-result-cache", action="store_true",
        help="do not reuse or store cached simulation results",
    )


def _runner(args: argparse.Namespace) -> GridRunner:
    return GridRunner(
        scale=args.scale,
        budget_fraction=args.budget_fraction,
        seed=args.seed,
        cache_dir=args.cache_dir,
        jobs=None if args.jobs == 0 else args.jobs,
        result_cache=False if args.no_result_cache else None,
    )


def _cmd_list(args: argparse.Namespace) -> int:
    if args.what == "workloads":
        print(f"{'name':<26} {'suite':<15} {'group':<5} description")
        print("-" * 88)
        for name in ALL_WORKLOADS:
            spec = REGISTRY[name]
            print(f"{spec.name:<26} {spec.suite:<15} {spec.group:<5} "
                  f"{spec.description}")
    else:
        for name in PAPER_PREFETCHER_ORDER:
            print(name)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    runner = _runner(args)
    prefetchers = (
        PAPER_PREFETCHER_ORDER if args.prefetcher == "all"
        else [args.prefetcher]
    )
    workloads = ALL_WORKLOADS if args.workload == "all" else [args.workload]
    header = (f"{'workload':<26} {'prefetcher':<12} {'IPC':>6} {'MPKI':>8} "
              f"{'timely':>7} {'sw':>6} {'wrong':>6}")
    print(header)
    print("-" * len(header))
    for workload in workloads:
        for name in prefetchers:
            result = runner.run_one(workload, name)
            print(
                f"{workload:<26} {name:<12} {result.ipc:6.3f} "
                f"{result.mpki:8.2f} "
                f"{result.class_fraction(DemandClass.TIMELY):6.1%} "
                f"{result.class_fraction(DemandClass.SHORTER_WAITING):6.1%} "
                f"{result.wrong_fraction:6.1%}"
            )
    if args.json is not None:
        from repro.harness.export import write_json

        grid = runner.run_grid(workloads, prefetchers)
        write_json(
            grid, args.json,
            budget_fraction=args.budget_fraction,
            scale=args.scale,
            seed=args.seed,
        )
        print(f"\nwrote {args.json}")
    return 0


_FIGURES = {
    "1": "figure1",
    "5": "figure5",
    "12": "figure12",
    "13": "figure13",
    "14": "figure14",
    "15": "figure15",
}

_TABLES = {"1": "table1", "3": "table3"}


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.harness import experiments

    function = getattr(experiments, _FIGURES[args.number])
    result = function(_runner(args))
    print(result.render())
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.harness import experiments

    if args.number == "3":
        print(experiments.table3().render())
    else:
        print(experiments.table1(_runner(args)).render())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    spec = get_workload(args.workload)
    trace = build_trace(
        spec,
        scale=args.scale,
        max_accesses=args.accesses,
        seed=args.seed,
    )
    write_trace(trace, args.out)
    stats = trace.stats()
    print(f"wrote {args.out}: {len(trace.events)} events, "
          f"{stats.memory_accesses} accesses, "
          f"{stats.blocks} block instances")
    return 0


def _cmd_exec_stats(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.common.errors import ExecError
    from repro.exec.telemetry import load_stats
    from repro.harness.report import format_exec_stats

    path = Path(args.cache_dir) / "exec-stats.json"
    if not path.exists():
        raise ExecError(
            f"no recorded execution statistics at {path}; run a figure or "
            "grid first (statistics persist next to the cache)"
        )
    document = load_stats(path)
    print(format_exec_stats(document.get("summary", {})))
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    trace = read_trace(args.path)
    trace.validate()
    stats = trace.stats()
    print(f"name:              {trace.name}")
    print(f"events:            {len(trace.events)}")
    print(f"instructions:      {stats.instructions}")
    print(f"memory accesses:   {stats.memory_accesses} "
          f"({stats.loads} loads, {stats.stores} stores)")
    print(f"block instances:   {stats.blocks} "
          f"({stats.distinct_block_ids} static blocks)")
    print(f"loop fraction:     {stats.loop_fraction:.1%}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Loop-Aware Memory Prefetching Using Code "
            "Block Working Sets' (MICRO 2014)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list workloads or prefetchers")
    list_parser.add_argument(
        "what", choices=["workloads", "prefetchers"])
    list_parser.set_defaults(handler=_cmd_list)

    run_parser = subparsers.add_parser(
        "run", help="simulate workload(s) against prefetcher(s)")
    run_parser.add_argument(
        "--workload", default="all",
        help="workload name or 'all' (default all)")
    run_parser.add_argument(
        "--prefetcher", default="all",
        help="prefetcher name or 'all' (default all)")
    run_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the results as JSON to PATH")
    _add_runner_arguments(run_parser)
    run_parser.set_defaults(handler=_cmd_run)

    figure_parser = subparsers.add_parser(
        "figure", help="reproduce one figure of the paper")
    figure_parser.add_argument("number", choices=sorted(_FIGURES))
    _add_runner_arguments(figure_parser)
    figure_parser.set_defaults(handler=_cmd_figure)

    table_parser = subparsers.add_parser(
        "table", help="reproduce one table of the paper")
    table_parser.add_argument("number", choices=sorted(_TABLES))
    _add_runner_arguments(table_parser)
    table_parser.set_defaults(handler=_cmd_table)

    trace_parser = subparsers.add_parser(
        "trace", help="generate and save a workload trace")
    trace_parser.add_argument("--workload", required=True)
    trace_parser.add_argument("--out", required=True)
    trace_parser.add_argument(
        "--accesses", type=int, default=None,
        help="memory-access budget (default: the workload's own)")
    _add_runner_arguments(trace_parser)
    trace_parser.set_defaults(handler=_cmd_trace)

    inspect_parser = subparsers.add_parser(
        "inspect", help="validate and summarize a saved trace")
    inspect_parser.add_argument("path")
    inspect_parser.set_defaults(handler=_cmd_inspect)

    stats_parser = subparsers.add_parser(
        "exec-stats",
        help="show telemetry of the last recorded grid execution")
    _add_cache_arguments(stats_parser)
    stats_parser.set_defaults(handler=_cmd_exec_stats)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
