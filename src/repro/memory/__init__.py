"""Cache hierarchy substrate.

Models the memory system of Table II: a 4-way L1 data cache and an
inclusive, 8-way L2, both with 64-byte lines and true-LRU replacement.
Prefetchers fetch into the L2 (Section VI: "the prefetchers were
configured to fetch data to the L2 cache").
"""

from repro.memory.cache import CacheConfig, EvictionRecord, SetAssociativeCache
from repro.memory.hierarchy import (
    AccessOutcome,
    AccessResult,
    CacheHierarchy,
    HierarchyConfig,
)

__all__ = [
    "CacheConfig",
    "EvictionRecord",
    "SetAssociativeCache",
    "AccessOutcome",
    "AccessResult",
    "CacheHierarchy",
    "HierarchyConfig",
]
