"""Two-level inclusive cache hierarchy.

Demand accesses probe L1 then L2 then memory; fills install in both
levels.  Prefetch fills install in L2 only (Table II / Section VI).
Because the L2 is inclusive, an L2 eviction back-invalidates the line in
L1; both kinds of L1 removals are reported so region-based prefetchers
(SMS) can close their pattern generations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.check import invariants
from repro.common.constants import DEFAULT_LINE_SIZE
from repro.common.errors import ConfigError
from repro.memory.cache import CacheConfig, EvictionRecord, SetAssociativeCache


class AccessOutcome(Enum):
    """Where a demand access was satisfied."""

    L1_HIT = "l1_hit"
    L2_HIT = "l2_hit"
    MEMORY = "memory"


#: Integer outcome codes returned by :meth:`CacheHierarchy.demand_access_fast`
#: (the engine's hot loop branches on plain ints instead of enum members).
FAST_L1_HIT = 0
FAST_L2_HIT = 1
FAST_L2_HIT_PREFETCH = 2
FAST_MEMORY = 3


@dataclass(frozen=True)
class AccessResult:
    """Everything the engine needs to know about one demand access.

    Attributes:
        outcome: level that satisfied the access.
        line: the line number accessed.
        l2_fill_was_prefetch: on an L2 hit, whether the hit line was an
            unused prefetch (turns the access into a *useful* prefetch).
        l1_evictions: lines removed from L1 by this access (capacity
            eviction on fill plus inclusion back-invalidations).
        l2_eviction: line removed from L2 by this access, if any.
    """

    outcome: AccessOutcome
    line: int
    l2_fill_was_prefetch: bool = False
    l1_evictions: tuple[EvictionRecord, ...] = ()
    l2_eviction: EvictionRecord | None = None


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache hierarchy geometry (defaults follow the reduced scale;
    :data:`repro.sim.config.PAPER_CONFIG` holds the Table II values)."""

    l1: CacheConfig
    l2: CacheConfig
    line_size: int = DEFAULT_LINE_SIZE

    def __post_init__(self) -> None:
        if self.l1.line_size != self.line_size or self.l2.line_size != self.line_size:
            raise ConfigError("all cache levels must share the hierarchy line size")
        if self.l2.size_bytes < self.l1.size_bytes:
            raise ConfigError(
                "inclusive L2 must be at least as large as L1 "
                f"({self.l2.size_bytes} < {self.l1.size_bytes})"
            )


@dataclass
class HierarchyStats:
    """Running counters maintained by the hierarchy."""

    accesses: int = 0
    l1_misses: int = 0
    l2_misses: int = 0
    prefetch_fills: int = 0
    useful_prefetch_hits: int = 0
    wrong_prefetch_evictions: int = 0


class CacheHierarchy:
    """L1 + inclusive L2 with prefetch-aware accounting."""

    def __init__(self, config: HierarchyConfig) -> None:
        self.config = config
        self.l1 = SetAssociativeCache(config.l1)
        self.l2 = SetAssociativeCache(config.l2)
        self.stats = HierarchyStats()
        # Read once at construction (same contract as obs profiling):
        # when off, every fill path pays a single falsy attribute test.
        self._invariant_checking = invariants.enabled()

    def demand_access(self, line: int) -> AccessResult:
        """Perform one committed load/store at line granularity."""
        self.stats.accesses += 1
        if self.l1.access(line):
            # An L1 hit also refreshes the line's recency in L2 so the
            # inclusive L2 does not victimize hot lines.
            self.l2.access(line)
            return AccessResult(AccessOutcome.L1_HIT, line)

        self.stats.l1_misses += 1
        l1_evictions: list[EvictionRecord] = []
        if self.l2.contains(line):
            was_prefetch = self.l2.is_unused_prefetch(line)
            if was_prefetch:
                self.stats.useful_prefetch_hits += 1
            self.l2.access(line)  # clears the prefetch flag, updates LRU
            victim = self.l1.insert(line)
            if victim is not None:
                l1_evictions.append(victim)
            return AccessResult(
                AccessOutcome.L2_HIT,
                line,
                l2_fill_was_prefetch=was_prefetch,
                l1_evictions=tuple(l1_evictions),
            )

        self.stats.l2_misses += 1
        l2_victim = self.l2.insert(line)
        if l2_victim is not None:
            if l2_victim.was_prefetch:
                self.stats.wrong_prefetch_evictions += 1
            # Inclusion: the line may not live in L1 once it leaves L2.
            back = self.l1.invalidate(l2_victim.line)
            if back is not None:
                l1_evictions.append(back)
        l1_victim = self.l1.insert(line)
        if l1_victim is not None:
            l1_evictions.append(l1_victim)
        if self._invariant_checking:
            invariants.check_hierarchy(self)
        return AccessResult(
            AccessOutcome.MEMORY,
            line,
            l1_evictions=tuple(l1_evictions),
            l2_eviction=l2_victim,
        )

    def demand_access_fast(self, line: int, evictions: list[int]) -> int:
        """Hot-loop variant of :meth:`demand_access`.

        Returns a ``FAST_*`` outcome code and appends the *line numbers*
        evicted from L1 (same order as ``AccessResult.l1_evictions``) to
        ``evictions`` — the engine only ever consumes the line numbers,
        so no per-access result object or record tuple is built.  All
        cache-state mutations and statistics match :meth:`demand_access`
        exactly; the two methods are interchangeable mid-simulation.
        """
        stats = self.stats
        stats.accesses += 1
        l1 = self.l1
        l2 = self.l2
        l1_set = l1._sets[line & l1._index_mask]
        l2_set = l2._sets[line & l2._index_mask]
        if line in l1_set:
            l1_set[line] = False
            l1_set.move_to_end(line)
            if line in l2_set:
                l2_set[line] = False
                l2_set.move_to_end(line)
            return FAST_L1_HIT

        stats.l1_misses += 1
        if line in l2_set:
            was_prefetch = l2_set[line]
            if was_prefetch:
                stats.useful_prefetch_hits += 1
            l2_set[line] = False
            l2_set.move_to_end(line)
            victim = l1.insert(line)
            if victim is not None:
                evictions.append(victim.line)
            return FAST_L2_HIT_PREFETCH if was_prefetch else FAST_L2_HIT

        stats.l2_misses += 1
        l2_victim = l2.insert(line)
        if l2_victim is not None:
            if l2_victim.was_prefetch:
                stats.wrong_prefetch_evictions += 1
            back = l1.invalidate(l2_victim.line)
            if back is not None:
                evictions.append(back.line)
        l1_victim = l1.insert(line)
        if l1_victim is not None:
            evictions.append(l1_victim.line)
        if self._invariant_checking:
            invariants.check_hierarchy(self)
        return FAST_MEMORY

    def prefetch_fill_fast(self, line: int, evictions: list[int]) -> bool:
        """Hot-loop variant of :meth:`prefetch_fill`.

        Returns False when the line was already resident (redundant
        prefetch); otherwise fills L2 and appends any back-invalidated
        L1 line numbers to ``evictions``.  State effects match
        :meth:`prefetch_fill` exactly.
        """
        l2 = self.l2
        if line in l2._sets[line & l2._index_mask]:
            return False
        self.stats.prefetch_fills += 1
        l2_victim = l2.insert(line, from_prefetch=True)
        if l2_victim is not None:
            if l2_victim.was_prefetch:
                self.stats.wrong_prefetch_evictions += 1
            back = self.l1.invalidate(l2_victim.line)
            if back is not None:
                evictions.append(back.line)
        if self._invariant_checking:
            invariants.check_hierarchy(self)
        return True

    def prefetch_fill(self, line: int) -> AccessResult | None:
        """Install a completed prefetch into L2.

        Returns ``None`` when the line is already resident (the prefetch
        was redundant); otherwise an :class:`AccessResult` describing the
        fill and any inclusion victims.
        """
        if self.l2.contains(line):
            return None
        self.stats.prefetch_fills += 1
        l1_evictions: list[EvictionRecord] = []
        l2_victim = self.l2.insert(line, from_prefetch=True)
        if l2_victim is not None:
            if l2_victim.was_prefetch:
                self.stats.wrong_prefetch_evictions += 1
            back = self.l1.invalidate(l2_victim.line)
            if back is not None:
                l1_evictions.append(back)
        if self._invariant_checking:
            invariants.check_hierarchy(self)
        return AccessResult(
            AccessOutcome.MEMORY,
            line,
            l1_evictions=tuple(l1_evictions),
            l2_eviction=l2_victim,
        )

    def in_l2(self, line: int) -> bool:
        """Presence probe used by prefetchers to skip already-cached lines
        ("skipping addresses that are already cached", Section I)."""
        return self.l2.contains(line)

    def reset(self) -> None:
        """Drop all cached state and zero the counters."""
        self.l1.flush()
        self.l2.flush()
        self.stats = HierarchyStats()
