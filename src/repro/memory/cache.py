"""Set-associative cache with true-LRU replacement.

The cache operates on *line numbers* (byte address >> 6), not byte
addresses; address-to-line conversion happens once at the hierarchy
boundary.  Each set is an ``OrderedDict`` keyed by line number whose
insertion order encodes recency — ``move_to_end`` on a hit makes both
lookup and replacement O(1).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.common.bitops import is_power_of_two, log2_exact
from repro.common.constants import DEFAULT_LINE_SIZE
from repro.common.errors import ConfigError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    Attributes:
        name: label used in error messages and reports.
        size_bytes: total capacity.
        associativity: ways per set.
        line_size: bytes per line (must match the hierarchy's line size).
        latency: access latency in cycles (used by the timing model).
        mshrs: miss-status holding registers; bounds the number of
            concurrently outstanding misses at this level.
    """

    name: str
    size_bytes: int
    associativity: int
    line_size: int = DEFAULT_LINE_SIZE
    latency: int = 1
    mshrs: int = 4

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0:
            raise ConfigError(f"cache '{self.name}': size and ways must be positive")
        if self.latency < 1:
            raise ConfigError(
                f"cache '{self.name}': latency must be at least one cycle, "
                f"got {self.latency}"
            )
        if self.mshrs < 1:
            raise ConfigError(
                f"cache '{self.name}': needs at least one MSHR, "
                f"got {self.mshrs}"
            )
        if not is_power_of_two(self.line_size):
            raise ConfigError(f"cache '{self.name}': line size must be a power of two")
        if self.size_bytes % (self.line_size * self.associativity) != 0:
            raise ConfigError(
                f"cache '{self.name}': size {self.size_bytes} is not divisible by "
                f"line_size*ways = {self.line_size * self.associativity}"
            )
        if not is_power_of_two(self.num_sets):
            raise ConfigError(
                f"cache '{self.name}': set count {self.num_sets} must be a power "
                "of two for index extraction"
            )

    @property
    def num_lines(self) -> int:
        """Total line capacity."""
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.num_lines // self.associativity


@dataclass(frozen=True)
class EvictionRecord:
    """A line pushed out of the cache.

    Attributes:
        line: evicted line number.
        was_prefetch: the line was installed by a prefetch and (at the
            time of eviction) never demanded — this is what classifies a
            prefetch as *wrong* in the Figure 13 taxonomy.
    """

    line: int
    was_prefetch: bool


class SetAssociativeCache:
    """One cache level.

    Besides presence, each resident line carries a single metadata bit:
    whether it was brought in by a prefetch and not yet referenced by a
    demand access.  The accuracy accounting of Figure 13 is built on that
    bit.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._index_mask = config.num_sets - 1
        # set index -> OrderedDict[line, prefetched_unused flag]
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self._line_shift = log2_exact(config.line_size)

    # -- queries -------------------------------------------------------------

    def _set_of(self, line: int) -> OrderedDict[int, bool]:
        return self._sets[line & self._index_mask]

    def contains(self, line: int) -> bool:
        """Presence check without touching LRU state."""
        return line in self._set_of(line)

    def is_unused_prefetch(self, line: int) -> bool:
        """True if ``line`` is resident and still flagged prefetched-unused."""
        return self._set_of(line).get(line, False)

    def resident_lines(self) -> list[int]:
        """All resident line numbers (testing/inspection helper)."""
        return [line for cache_set in self._sets for line in cache_set]

    @property
    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(cache_set) for cache_set in self._sets)

    # -- operations ----------------------------------------------------------

    def access(self, line: int) -> bool:
        """Demand access: returns hit/miss and promotes the line to MRU.

        A hit clears the prefetched-unused flag — the prefetch has now
        been *used* and can no longer be classified as wrong.
        """
        cache_set = self._set_of(line)
        if line in cache_set:
            cache_set[line] = False
            cache_set.move_to_end(line)
            return True
        return False

    def insert(self, line: int, from_prefetch: bool = False) -> EvictionRecord | None:
        """Install ``line``, returning the victim if the set was full.

        Demand fills install at MRU.  Prefetch fills install at *LRU*:
        until a demand access promotes the line, it is the set's next
        victim, so wrong prefetches age out without displacing the hot
        working set (the standard pollution-bounding insertion policy).

        Inserting a line that is already resident refreshes its LRU
        position (and demotes a prefetched-unused flag on a demand
        install) without evicting anything.
        """
        cache_set = self._set_of(line)
        if line in cache_set:
            if not from_prefetch:
                cache_set[line] = False
                cache_set.move_to_end(line)
            return None
        victim: EvictionRecord | None = None
        if len(cache_set) >= self.config.associativity:
            victim_line, victim_flag = cache_set.popitem(last=False)
            victim = EvictionRecord(victim_line, victim_flag)
        cache_set[line] = from_prefetch
        if from_prefetch:
            cache_set.move_to_end(line, last=False)
        return victim

    def invalidate(self, line: int) -> EvictionRecord | None:
        """Remove ``line`` if resident (used for inclusion back-invalidation)."""
        cache_set = self._set_of(line)
        if line in cache_set:
            flag = cache_set.pop(line)
            return EvictionRecord(line, flag)
        return None

    def flush(self) -> list[EvictionRecord]:
        """Empty the cache, returning every evicted line."""
        evicted = [
            EvictionRecord(line, flag)
            for cache_set in self._sets
            for line, flag in cache_set.items()
        ]
        for cache_set in self._sets:
            cache_set.clear()
        return evicted
