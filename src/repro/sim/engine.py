"""The trace-driven simulation engine.

Drives one prefetcher over one trace on the Table II machine model and
produces a :class:`~repro.sim.results.SimResult`.

Timing model
------------

The core retires ``width`` instructions per cycle; demand misses add
stall cycles on top.  Two mechanisms shape the stalls:

* **Memory-level parallelism** — an interval model: a miss opens a *miss
  window*; later misses that issue while the window is open, within ROB
  reach of its first miss, and within the L1 MSHR budget join the window
  and only extend its end.  The window's stall (its wall-clock span minus
  the instruction progress made under it) is charged when it closes, so
  independent misses overlap instead of serializing.
* **Prefetch timeliness** — prefetch candidates enter a bandwidth-limited
  issue queue (one issue per ``issue_interval`` cycles).  A demand access
  can therefore find its line already in L2 (*timely*), still in flight
  (*shorter-waiting-time*: it stalls only for the remainder), stuck in
  the queue (*non-timely*), or not covered at all (*missing*).

Prefetches fill into L2 only, never L1 (Table II / Section VI).

Two implementations
-------------------

:meth:`SimulationEngine.run` is the production fast path: it iterates the
trace's columnar arrays (:meth:`repro.trace.stream.Trace.columns`), uses
the hierarchy's ``*_fast`` methods (integer outcome codes, no per-access
result objects), accumulates counters in local ints, and inlines the
queue/drain loops.  :meth:`SimulationEngine.run_reference` is the
original object-per-event implementation, kept as the readable
specification of the model; the two are bit-identical (every float
operation happens in the same order on the same values) and the
equivalence is pinned by tests.
"""

from __future__ import annotations

import heapq
from collections import deque
from time import perf_counter

from repro import obs
from repro.check import invariants
from repro.common.bitops import log2_exact
from repro.prefetchers.base import DemandInfo, Prefetcher
from repro.sim.config import SimConfig
from repro.sim.results import DemandClass, SimResult
from repro.trace.events import BLOCK_BEGIN, BLOCK_END, MEMORY_ACCESS
from repro.trace.stream import Trace
from repro.memory.hierarchy import (
    FAST_L1_HIT,
    FAST_L2_HIT_PREFETCH,
    FAST_MEMORY,
    AccessOutcome,
    CacheHierarchy,
)


class SimulationEngine:
    """One machine: a hierarchy, a prefetch path, and a prefetcher."""

    def __init__(self, config: SimConfig, prefetcher: Prefetcher) -> None:
        self.config = config
        self.prefetcher = prefetcher
        self.hierarchy = CacheHierarchy(config.hierarchy)

    def run(self, trace: Trace) -> SimResult:
        """Simulate ``trace`` and return the measured result (fast path).

        Bit-identical to :meth:`run_reference`; see the module docstring
        for the relationship between the two.
        """
        config = self.config
        core = config.core
        prefetch_path = config.prefetch
        hierarchy = self.hierarchy
        prefetcher = self.prefetcher
        line_size = config.hierarchy.line_size
        line_shift = log2_exact(line_size)

        result = SimResult(
            workload=trace.name,
            prefetcher=prefetcher.name,
            instructions=trace.instructions,
            storage_bits=prefetcher.storage_bits(),
        )

        inv_width = 1.0 / core.width
        rob = core.rob_entries
        l2_extra = float(core.l2_latency - core.l1_latency)
        mem_latency = float(core.memory_latency)
        mshr_limit = config.hierarchy.l1.mshrs
        issue_interval = float(prefetch_path.issue_interval)
        queue_capacity = prefetch_path.queue_capacity
        max_in_flight = prefetch_path.max_in_flight

        # Profiling is read once per run: flipping obs mid-run is not
        # observed, which keeps the per-event cost at zero when disabled.
        profiling = obs.enabled()
        run_started = perf_counter() if profiling else 0.0
        # Invariant checking follows the same once-per-run contract; when
        # off, the only cost is one falsy branch per access/block-end.
        checking = invariants.enabled()
        checked_events = 0
        last_icount = 0
        last_next_issue = 0.0

        stall = 0.0
        # Miss-window (interval-model) state: while a window is open, the
        # issue clock excludes its pending stall so overlapping misses can
        # be detected; the pending stall is charged when the window closes.
        window_start_icount = -1  # -1 means no open window
        window_start_time = 0.0
        window_end = 0.0
        window_count = 0
        window_closes = 0

        queue: deque[int] = deque()
        queued: set[int] = set()
        in_flight: dict[int, float] = {}
        fill_heap: list[tuple[float, int]] = []
        next_issue = 0.0
        caught_in_flight = 0

        # Local counters flushed into `result` once at the end; the
        # Figure 13 class counts follow DemandClass member order.
        n_demand = 0
        n_l1_miss = 0
        n_llc_miss = 0
        n_timely = 0
        n_shorter = 0
        n_non_timely = 0
        n_missing = 0
        n_plain_hit = 0
        n_issued = 0
        n_fills = 0
        prefetch_bytes = 0
        demand_bytes = 0

        # Reusable scratch list the fast hierarchy methods append evicted
        # line numbers to; cleared after each consumer.
        evictions: list[int] = []

        heappush = heapq.heappush
        heappop = heapq.heappop
        queue_popleft = queue.popleft
        queue_append = queue.append
        queued_discard = queued.discard
        queued_add = queued.add
        in_flight_pop = in_flight.pop
        demand_access_fast = hierarchy.demand_access_fast
        prefetch_fill_fast = hierarchy.prefetch_fill_fast
        l2_sets = hierarchy.l2._sets
        l2_mask = hierarchy.l2._index_mask
        on_access = prefetcher.on_access
        on_block_begin = prefetcher.on_block_begin
        on_block_end = prefetcher.on_block_end
        on_l1_eviction = prefetcher.on_l1_eviction

        columns = trace.columns()
        for kind, icount, pc, payload, write in zip(
            columns.kinds,
            columns.icounts,
            columns.pcs,
            columns.payloads,
            columns.writes,
        ):
            now = icount * inv_width + stall

            if kind == MEMORY_ACCESS:
                # -- issue_prefetches: queued candidates consume bandwidth.
                while queue and next_issue <= now and len(in_flight) < max_in_flight:
                    pline = queue_popleft()
                    if pline not in queued:
                        continue  # stale: consumed by a demand access already
                    queued_discard(pline)
                    if pline in l2_sets[pline & l2_mask] or pline in in_flight:
                        continue  # redundant; never reaches the bus
                    completion = next_issue + mem_latency
                    in_flight[pline] = completion
                    heappush(fill_heap, (completion, pline))
                    n_issued += 1
                    prefetch_bytes += line_size
                    next_issue += issue_interval
                # -- drain_completions: install finished prefetches.
                while fill_heap and fill_heap[0][0] <= now:
                    completion, pline = heappop(fill_heap)
                    if in_flight.get(pline) != completion:
                        continue  # cancelled: the demand stream claimed it
                    del in_flight[pline]
                    if prefetch_fill_fast(pline, evictions):
                        n_fills += 1
                        if evictions:
                            for evicted in evictions:
                                on_l1_eviction(evicted)
                            evictions.clear()

                line = payload >> line_shift
                code = demand_access_fast(line, evictions)
                n_demand += 1

                latency = 0.0
                if code == FAST_L1_HIT:
                    info_l1_hit = True
                    info_l2_hit = True
                else:
                    n_l1_miss += 1
                    info_l1_hit = False
                    if code < FAST_MEMORY:  # either L2-hit code
                        info_l2_hit = True
                        latency = l2_extra
                        if code == FAST_L2_HIT_PREFETCH:
                            n_timely += 1
                        else:
                            n_plain_hit += 1
                    else:  # memory
                        info_l2_hit = False
                        completion = in_flight_pop(line, None)
                        if completion is not None:
                            # Prefetch in flight: wait out the remainder.
                            latency = max(0.0, completion - now)
                            n_shorter += 1
                            caught_in_flight += 1
                        elif line in queued:
                            queued_discard(line)
                            latency = mem_latency
                            n_non_timely += 1
                            n_llc_miss += 1
                            demand_bytes += line_size
                        else:
                            latency = mem_latency
                            n_missing += 1
                            n_llc_miss += 1
                            demand_bytes += line_size

                    # MLP interval model: join the open miss window when
                    # this miss issues under it, else close it (charging
                    # its pending stall) and open a fresh one.
                    if (
                        window_start_icount >= 0
                        and icount - window_start_icount <= rob
                        and now < window_end
                        and window_count < mshr_limit
                    ):
                        if now + latency > window_end:
                            window_end = now + latency
                        window_count += 1
                    else:
                        if window_start_icount >= 0:
                            window_closes += 1
                            # Progress under the window is capped at the
                            # ROB depth: the core cannot run further
                            # ahead of an outstanding miss than the
                            # instructions that fit behind it.
                            progress = min(
                                icount - window_start_icount, rob
                            ) * inv_width
                            pending = (window_end - window_start_time) - progress
                            if pending > 0.0:
                                stall += pending
                            now = icount * inv_width + stall
                        window_start_icount = icount
                        window_start_time = now
                        window_end = now + latency
                        window_count = 1

                    if evictions:
                        for evicted in evictions:
                            on_l1_eviction(evicted)
                        evictions.clear()

                candidates = on_access(
                    DemandInfo(
                        pc=pc,
                        line=line,
                        address=payload,
                        is_write=bool(write),
                        l1_hit=info_l1_hit,
                        l2_hit=info_l2_hit,
                    )
                )
                # -- enqueue_candidates ----------------------------------
                if candidates:
                    if not queue and next_issue < now:
                        next_issue = now
                    for cand in candidates:
                        if (
                            cand in queued
                            or cand in in_flight
                            or cand in l2_sets[cand & l2_mask]
                        ):
                            continue
                        if len(queue) >= queue_capacity:
                            break  # hardware queue full; newest drop
                        queue_append(cand)
                        queued_add(cand)
                    if profiling:
                        obs.observe("sim.prefetch_queue.occupancy", len(queue))
                if checking:
                    checked_events += 1
                    invariants.check_engine_state(
                        event_index=checked_events,
                        icount=icount,
                        last_icount=last_icount,
                        queue_length=len(queue),
                        queued=queued,
                        queue_members=set(queue),
                        in_flight=in_flight,
                        fill_heap=fill_heap,
                        next_issue=next_issue,
                        last_next_issue=last_next_issue,
                        window_count=window_count,
                        window_start_icount=window_start_icount,
                        mshr_limit=mshr_limit,
                        queue_capacity=queue_capacity,
                        max_in_flight=max_in_flight,
                    )
                    last_icount = icount
                    last_next_issue = next_issue

            elif kind == BLOCK_BEGIN:
                on_block_begin(payload)
            else:  # BLOCK_END
                while queue and next_issue <= now and len(in_flight) < max_in_flight:
                    pline = queue_popleft()
                    if pline not in queued:
                        continue
                    queued_discard(pline)
                    if pline in l2_sets[pline & l2_mask] or pline in in_flight:
                        continue
                    completion = next_issue + mem_latency
                    in_flight[pline] = completion
                    heappush(fill_heap, (completion, pline))
                    n_issued += 1
                    prefetch_bytes += line_size
                    next_issue += issue_interval
                while fill_heap and fill_heap[0][0] <= now:
                    completion, pline = heappop(fill_heap)
                    if in_flight.get(pline) != completion:
                        continue
                    del in_flight[pline]
                    if prefetch_fill_fast(pline, evictions):
                        n_fills += 1
                        if evictions:
                            for evicted in evictions:
                                on_l1_eviction(evicted)
                            evictions.clear()
                candidates = on_block_end(payload)
                if candidates:
                    if not queue and next_issue < now:
                        next_issue = now
                    for cand in candidates:
                        if (
                            cand in queued
                            or cand in in_flight
                            or cand in l2_sets[cand & l2_mask]
                        ):
                            continue
                        if len(queue) >= queue_capacity:
                            break
                        queue_append(cand)
                        queued_add(cand)
                    if profiling:
                        obs.observe("sim.prefetch_queue.occupancy", len(queue))
                if checking:
                    checked_events += 1
                    invariants.check_engine_state(
                        event_index=checked_events,
                        icount=icount,
                        last_icount=last_icount,
                        queue_length=len(queue),
                        queued=queued,
                        queue_members=set(queue),
                        in_flight=in_flight,
                        fill_heap=fill_heap,
                        next_issue=next_issue,
                        last_next_issue=last_next_issue,
                        window_count=window_count,
                        window_start_icount=window_start_icount,
                        mshr_limit=mshr_limit,
                        queue_capacity=queue_capacity,
                        max_in_flight=max_in_flight,
                    )
                    last_icount = icount
                    last_next_issue = next_issue

        # Close the final miss window before settling the clock.
        if window_start_icount >= 0:
            window_closes += 1
            progress = min(
                trace.instructions - window_start_icount, rob
            ) * inv_width
            pending = (window_end - window_start_time) - progress
            if pending > 0.0:
                stall += pending

        result.demand_accesses = n_demand
        result.l1_misses = n_l1_miss
        result.llc_misses = n_llc_miss
        result.prefetches_issued = n_issued
        result.prefetch_fills = n_fills
        result.prefetch_bytes_read = prefetch_bytes
        result.demand_bytes_read = demand_bytes
        classes = result.classes
        classes[DemandClass.TIMELY] = n_timely
        classes[DemandClass.SHORTER_WAITING] = n_shorter
        classes[DemandClass.NON_TIMELY] = n_non_timely
        classes[DemandClass.MISSING] = n_missing
        classes[DemandClass.PLAIN_HIT] = n_plain_hit

        result.cycles = trace.instructions * inv_width + stall
        result.useful_prefetches = (
            hierarchy.stats.useful_prefetch_hits + caught_in_flight
        )
        # Wrong = issued but never demanded: evicted unused, resident
        # unused at the end, and still in flight at the end.
        leftover_unused = sum(
            1
            for resident in hierarchy.l2.resident_lines()
            if hierarchy.l2.is_unused_prefetch(resident)
        )
        result.wrong_prefetches = (
            hierarchy.stats.wrong_prefetch_evictions
            + leftover_unused
            + len(in_flight)
        )
        if profiling:
            obs.record_seconds("sim.run", perf_counter() - run_started)
            obs.add("sim.events", len(trace.events))
            obs.add("sim.demand_accesses", result.demand_accesses)
            obs.add("sim.window_closes", window_closes)
            obs.add("sim.prefetches_issued", result.prefetches_issued)
        return result

    def run_reference(self, trace: Trace) -> SimResult:
        """Simulate ``trace`` with the original object-per-event loop.

        This is the readable specification of the timing model; the fast
        path in :meth:`run` must stay bit-identical to it (pinned by the
        engine equivalence tests).
        """
        config = self.config
        core = config.core
        prefetch_path = config.prefetch
        hierarchy = self.hierarchy
        prefetcher = self.prefetcher
        line_size = config.hierarchy.line_size
        line_shift = log2_exact(line_size)

        result = SimResult(
            workload=trace.name,
            prefetcher=prefetcher.name,
            instructions=trace.instructions,
            storage_bits=prefetcher.storage_bits(),
        )
        classes = result.classes

        inv_width = 1.0 / core.width
        rob = core.rob_entries
        l2_extra = float(core.l2_latency - core.l1_latency)
        mem_latency = float(core.memory_latency)
        mshr_limit = config.hierarchy.l1.mshrs
        issue_interval = float(prefetch_path.issue_interval)
        queue_capacity = prefetch_path.queue_capacity
        max_in_flight = prefetch_path.max_in_flight

        profiling = obs.enabled()
        run_started = perf_counter() if profiling else 0.0
        checking = invariants.enabled()
        checked_events = 0
        last_icount = 0
        last_next_issue = 0.0

        stall = 0.0
        window_start_icount = -1  # -1 means no open window
        window_start_time = 0.0
        window_end = 0.0
        window_count = 0
        window_closes = 0

        queue: deque[int] = deque()
        queued: set[int] = set()
        in_flight: dict[int, float] = {}
        fill_heap: list[tuple[float, int]] = []
        next_issue = 0.0
        caught_in_flight = 0

        def drain_completions(now: float) -> None:
            """Install prefetches whose memory access has completed."""
            while fill_heap and fill_heap[0][0] <= now:
                completion, line = heapq.heappop(fill_heap)
                if in_flight.get(line) != completion:
                    continue  # cancelled: the demand stream claimed it
                del in_flight[line]
                fill = hierarchy.prefetch_fill(line)
                if fill is not None:
                    result.prefetch_fills += 1
                    for eviction in fill.l1_evictions:
                        prefetcher.on_l1_eviction(eviction.line)

        def issue_prefetches(now: float) -> None:
            """Consume issue bandwidth moving queued candidates to memory."""
            nonlocal next_issue
            while queue and next_issue <= now and len(in_flight) < max_in_flight:
                line = queue.popleft()
                if line not in queued:
                    continue  # stale: consumed by a demand access already
                queued.discard(line)
                if hierarchy.in_l2(line) or line in in_flight:
                    continue  # redundant; never reaches the bus
                completion = next_issue + mem_latency
                in_flight[line] = completion
                heapq.heappush(fill_heap, (completion, line))
                result.prefetches_issued += 1
                result.prefetch_bytes_read += line_size
                next_issue += issue_interval

        def enqueue_candidates(candidates: list[int], now: float) -> None:
            nonlocal next_issue
            if not candidates:
                return
            if not queue and next_issue < now:
                next_issue = now
            for line in candidates:
                if line in queued or line in in_flight or hierarchy.in_l2(line):
                    continue
                if len(queue) >= queue_capacity:
                    break  # hardware queue is full; newest candidates drop
                queue.append(line)
                queued.add(line)
            if profiling:
                obs.observe("sim.prefetch_queue.occupancy", len(queue))

        for event in trace.events:
            now = event.icount * inv_width + stall
            kind = event.kind

            if kind == MEMORY_ACCESS:
                issue_prefetches(now)
                drain_completions(now)

                line = event.address >> line_shift
                access = hierarchy.demand_access(line)
                outcome = access.outcome
                result.demand_accesses += 1

                latency = 0.0
                if outcome is AccessOutcome.L1_HIT:
                    info_l1_hit = True
                    info_l2_hit = True
                else:
                    result.l1_misses += 1
                    info_l1_hit = False
                    if outcome is AccessOutcome.L2_HIT:
                        info_l2_hit = True
                        latency = l2_extra
                        if access.l2_fill_was_prefetch:
                            classes[DemandClass.TIMELY] += 1
                        else:
                            classes[DemandClass.PLAIN_HIT] += 1
                    else:  # memory
                        info_l2_hit = False
                        completion = in_flight.pop(line, None)
                        if completion is not None:
                            # Prefetch in flight: wait out the remainder.
                            latency = max(0.0, completion - now)
                            classes[DemandClass.SHORTER_WAITING] += 1
                            caught_in_flight += 1
                        elif line in queued:
                            queued.discard(line)
                            latency = mem_latency
                            classes[DemandClass.NON_TIMELY] += 1
                            result.llc_misses += 1
                            result.demand_bytes_read += line_size
                        else:
                            latency = mem_latency
                            classes[DemandClass.MISSING] += 1
                            result.llc_misses += 1
                            result.demand_bytes_read += line_size

                    # MLP interval model: join the open miss window when
                    # this miss issues under it, else close it (charging
                    # its pending stall) and open a fresh one.
                    if (
                        window_start_icount >= 0
                        and event.icount - window_start_icount <= rob
                        and now < window_end
                        and window_count < mshr_limit
                    ):
                        window_end = max(window_end, now + latency)
                        window_count += 1
                    else:
                        if window_start_icount >= 0:
                            window_closes += 1
                            # Progress under the window is capped at the
                            # ROB depth: the core cannot run further
                            # ahead of an outstanding miss than the
                            # instructions that fit behind it.
                            progress = min(
                                event.icount - window_start_icount, rob
                            ) * inv_width
                            pending = (window_end - window_start_time) - progress
                            if pending > 0.0:
                                stall += pending
                            now = event.icount * inv_width + stall
                        window_start_icount = event.icount
                        window_start_time = now
                        window_end = now + latency
                        window_count = 1

                    for eviction in access.l1_evictions:
                        prefetcher.on_l1_eviction(eviction.line)

                info = DemandInfo(
                    pc=event.pc,
                    line=line,
                    address=event.address,
                    is_write=event.is_write,
                    l1_hit=info_l1_hit,
                    l2_hit=info_l2_hit,
                )
                enqueue_candidates(prefetcher.on_access(info), now)
                if checking:
                    checked_events += 1
                    invariants.check_engine_state(
                        event_index=checked_events,
                        icount=event.icount,
                        last_icount=last_icount,
                        queue_length=len(queue),
                        queued=queued,
                        queue_members=set(queue),
                        in_flight=in_flight,
                        fill_heap=fill_heap,
                        next_issue=next_issue,
                        last_next_issue=last_next_issue,
                        window_count=window_count,
                        window_start_icount=window_start_icount,
                        mshr_limit=mshr_limit,
                        queue_capacity=queue_capacity,
                        max_in_flight=max_in_flight,
                    )
                    last_icount = event.icount
                    last_next_issue = next_issue

            elif kind == BLOCK_BEGIN:
                prefetcher.on_block_begin(event.block_id)
            elif kind == BLOCK_END:
                issue_prefetches(now)
                drain_completions(now)
                enqueue_candidates(prefetcher.on_block_end(event.block_id), now)
                if checking:
                    checked_events += 1
                    invariants.check_engine_state(
                        event_index=checked_events,
                        icount=event.icount,
                        last_icount=last_icount,
                        queue_length=len(queue),
                        queued=queued,
                        queue_members=set(queue),
                        in_flight=in_flight,
                        fill_heap=fill_heap,
                        next_issue=next_issue,
                        last_next_issue=last_next_issue,
                        window_count=window_count,
                        window_start_icount=window_start_icount,
                        mshr_limit=mshr_limit,
                        queue_capacity=queue_capacity,
                        max_in_flight=max_in_flight,
                    )
                    last_icount = event.icount
                    last_next_issue = next_issue

        # Close the final miss window before settling the clock.
        if window_start_icount >= 0:
            window_closes += 1
            progress = min(
                trace.instructions - window_start_icount, rob
            ) * inv_width
            pending = (window_end - window_start_time) - progress
            if pending > 0.0:
                stall += pending
        result.cycles = trace.instructions * inv_width + stall
        result.useful_prefetches = (
            hierarchy.stats.useful_prefetch_hits + caught_in_flight
        )
        # Wrong = issued but never demanded: evicted unused, resident
        # unused at the end, and still in flight at the end.
        leftover_unused = sum(
            1
            for resident in hierarchy.l2.resident_lines()
            if hierarchy.l2.is_unused_prefetch(resident)
        )
        result.wrong_prefetches = (
            hierarchy.stats.wrong_prefetch_evictions
            + leftover_unused
            + len(in_flight)
        )
        if profiling:
            obs.record_seconds("sim.run", perf_counter() - run_started)
            obs.add("sim.events", len(trace.events))
            obs.add("sim.demand_accesses", result.demand_accesses)
            obs.add("sim.window_closes", window_closes)
            obs.add("sim.prefetches_issued", result.prefetches_issued)
        return result


def simulate(config: SimConfig, prefetcher: Prefetcher, trace: Trace) -> SimResult:
    """Run one (prefetcher, trace) simulation on a fresh machine."""
    return SimulationEngine(config, prefetcher).run(trace)
