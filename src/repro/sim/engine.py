"""The trace-driven simulation engine.

Drives one prefetcher over one trace on the Table II machine model and
produces a :class:`~repro.sim.results.SimResult`.

Timing model
------------

The core retires ``width`` instructions per cycle; demand misses add
stall cycles on top.  Two mechanisms shape the stalls:

* **Memory-level parallelism** — an interval model: a miss opens a *miss
  window*; later misses that issue while the window is open, within ROB
  reach of its first miss, and within the L1 MSHR budget join the window
  and only extend its end.  The window's stall (its wall-clock span minus
  the instruction progress made under it) is charged when it closes, so
  independent misses overlap instead of serializing.
* **Prefetch timeliness** — prefetch candidates enter a bandwidth-limited
  issue queue (one issue per ``issue_interval`` cycles).  A demand access
  can therefore find its line already in L2 (*timely*), still in flight
  (*shorter-waiting-time*: it stalls only for the remainder), stuck in
  the queue (*non-timely*), or not covered at all (*missing*).

Prefetches fill into L2 only, never L1 (Table II / Section VI).
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.prefetchers.base import DemandInfo, Prefetcher
from repro.sim.config import SimConfig
from repro.sim.results import DemandClass, SimResult
from repro.trace.events import BLOCK_BEGIN, BLOCK_END, MEMORY_ACCESS
from repro.trace.stream import Trace
from repro.memory.hierarchy import AccessOutcome, CacheHierarchy


class SimulationEngine:
    """One machine: a hierarchy, a prefetch path, and a prefetcher."""

    def __init__(self, config: SimConfig, prefetcher: Prefetcher) -> None:
        self.config = config
        self.prefetcher = prefetcher
        self.hierarchy = CacheHierarchy(config.hierarchy)

    def run(self, trace: Trace) -> SimResult:
        """Simulate ``trace`` and return the measured result."""
        config = self.config
        core = config.core
        prefetch_path = config.prefetch
        hierarchy = self.hierarchy
        prefetcher = self.prefetcher
        line_shift = 6  # 64-byte lines
        line_size = config.hierarchy.line_size

        result = SimResult(
            workload=trace.name,
            prefetcher=prefetcher.name,
            instructions=trace.instructions,
            storage_bits=prefetcher.storage_bits(),
        )
        classes = result.classes

        inv_width = 1.0 / core.width
        rob = core.rob_entries
        l2_extra = float(core.l2_latency - core.l1_latency)
        mem_latency = float(core.memory_latency)
        mshr_limit = config.hierarchy.l1.mshrs
        issue_interval = float(prefetch_path.issue_interval)
        queue_capacity = prefetch_path.queue_capacity
        max_in_flight = prefetch_path.max_in_flight

        stall = 0.0
        # Miss-window (interval-model) state: while a window is open, the
        # issue clock excludes its pending stall so overlapping misses can
        # be detected; the pending stall is charged when the window closes.
        window_start_icount = -1  # -1 means no open window
        window_start_time = 0.0
        window_end = 0.0
        window_count = 0

        queue: deque[int] = deque()
        queued: set[int] = set()
        in_flight: dict[int, float] = {}
        fill_heap: list[tuple[float, int]] = []
        next_issue = 0.0
        caught_in_flight = 0

        def drain_completions(now: float) -> None:
            """Install prefetches whose memory access has completed."""
            while fill_heap and fill_heap[0][0] <= now:
                completion, line = heapq.heappop(fill_heap)
                if in_flight.get(line) != completion:
                    continue  # cancelled: the demand stream claimed it
                del in_flight[line]
                fill = hierarchy.prefetch_fill(line)
                if fill is not None:
                    result.prefetch_fills += 1
                    for eviction in fill.l1_evictions:
                        prefetcher.on_l1_eviction(eviction.line)

        def issue_prefetches(now: float) -> None:
            """Consume issue bandwidth moving queued candidates to memory."""
            nonlocal next_issue
            while queue and next_issue <= now and len(in_flight) < max_in_flight:
                line = queue.popleft()
                if line not in queued:
                    continue  # stale: consumed by a demand access already
                queued.discard(line)
                if hierarchy.in_l2(line) or line in in_flight:
                    continue  # redundant; never reaches the bus
                completion = next_issue + mem_latency
                in_flight[line] = completion
                heapq.heappush(fill_heap, (completion, line))
                result.prefetches_issued += 1
                result.prefetch_bytes_read += line_size
                next_issue += issue_interval

        def enqueue_candidates(candidates: list[int], now: float) -> None:
            nonlocal next_issue
            if not candidates:
                return
            if not queue and next_issue < now:
                next_issue = now
            for line in candidates:
                if line in queued or line in in_flight or hierarchy.in_l2(line):
                    continue
                if len(queue) >= queue_capacity:
                    break  # hardware queue is full; newest candidates drop
                queue.append(line)
                queued.add(line)

        for event in trace.events:
            now = event.icount * inv_width + stall
            kind = event.kind

            if kind == MEMORY_ACCESS:
                issue_prefetches(now)
                drain_completions(now)

                line = event.address >> line_shift
                access = hierarchy.demand_access(line)
                outcome = access.outcome
                result.demand_accesses += 1

                latency = 0.0
                if outcome is AccessOutcome.L1_HIT:
                    info_l1_hit = True
                    info_l2_hit = True
                else:
                    result.l1_misses += 1
                    info_l1_hit = False
                    if outcome is AccessOutcome.L2_HIT:
                        info_l2_hit = True
                        latency = l2_extra
                        if access.l2_fill_was_prefetch:
                            classes[DemandClass.TIMELY] += 1
                        else:
                            classes[DemandClass.PLAIN_HIT] += 1
                    else:  # memory
                        info_l2_hit = False
                        completion = in_flight.pop(line, None)
                        if completion is not None:
                            # Prefetch in flight: wait out the remainder.
                            latency = max(0.0, completion - now)
                            classes[DemandClass.SHORTER_WAITING] += 1
                            caught_in_flight += 1
                        elif line in queued:
                            queued.discard(line)
                            latency = mem_latency
                            classes[DemandClass.NON_TIMELY] += 1
                            result.llc_misses += 1
                            result.demand_bytes_read += line_size
                        else:
                            latency = mem_latency
                            classes[DemandClass.MISSING] += 1
                            result.llc_misses += 1
                            result.demand_bytes_read += line_size

                    # MLP interval model: join the open miss window when
                    # this miss issues under it, else close it (charging
                    # its pending stall) and open a fresh one.
                    if (
                        window_start_icount >= 0
                        and event.icount - window_start_icount <= rob
                        and now < window_end
                        and window_count < mshr_limit
                    ):
                        window_end = max(window_end, now + latency)
                        window_count += 1
                    else:
                        if window_start_icount >= 0:
                            # Progress under the window is capped at the
                            # ROB depth: the core cannot run further
                            # ahead of an outstanding miss than the
                            # instructions that fit behind it.
                            progress = min(
                                event.icount - window_start_icount, rob
                            ) * inv_width
                            pending = (window_end - window_start_time) - progress
                            if pending > 0.0:
                                stall += pending
                            now = event.icount * inv_width + stall
                        window_start_icount = event.icount
                        window_start_time = now
                        window_end = now + latency
                        window_count = 1

                    for eviction in access.l1_evictions:
                        prefetcher.on_l1_eviction(eviction.line)

                info = DemandInfo(
                    pc=event.pc,
                    line=line,
                    address=event.address,
                    is_write=event.is_write,
                    l1_hit=info_l1_hit,
                    l2_hit=info_l2_hit,
                )
                enqueue_candidates(prefetcher.on_access(info), now)

            elif kind == BLOCK_BEGIN:
                prefetcher.on_block_begin(event.block_id)
            elif kind == BLOCK_END:
                issue_prefetches(now)
                drain_completions(now)
                enqueue_candidates(prefetcher.on_block_end(event.block_id), now)

        # Close the final miss window before settling the clock.
        if window_start_icount >= 0:
            progress = min(
                trace.instructions - window_start_icount, rob
            ) * inv_width
            pending = (window_end - window_start_time) - progress
            if pending > 0.0:
                stall += pending
        result.cycles = trace.instructions * inv_width + stall
        result.useful_prefetches = (
            hierarchy.stats.useful_prefetch_hits + caught_in_flight
        )
        # Wrong = issued but never demanded: evicted unused, resident
        # unused at the end, and still in flight at the end.
        leftover_unused = sum(
            1
            for resident in hierarchy.l2.resident_lines()
            if hierarchy.l2.is_unused_prefetch(resident)
        )
        result.wrong_prefetches = (
            hierarchy.stats.wrong_prefetch_evictions
            + leftover_unused
            + len(in_flight)
        )
        return result


def simulate(config: SimConfig, prefetcher: Prefetcher, trace: Trace) -> SimResult:
    """Run one (prefetcher, trace) simulation on a fresh machine."""
    return SimulationEngine(config, prefetcher).run(trace)
