"""Batch simulation backend: many lanes over one shared columnar trace.

One workload's trace is identical for every prefetcher/config variant
evaluated against it, yet the per-cell engines each re-decode the same
columnar arrays, re-shift the same addresses into line numbers, and
re-scale the same instruction counts into retire times.  The batch
backend hoists all of that shared, state-free work out of the per-lane
loop: the trace's columns are decoded **once per chunk** into plain
Python lists (via numpy when available — stacked typed arrays sliced and
materialized per chunk — and a pure-Python fallback otherwise), the
address→line shift and the ``icount * (1/width)`` retire-time product
are precomputed per distinct ``(line_shift, width)`` group, and every
*lane* (one prefetcher + machine config) then advances over the shared
chunk with its own resumable machine state.

Bit-identity contract
---------------------

Each lane must produce exactly the result
:meth:`repro.sim.engine.SimulationEngine.run` produces — the same
``SimResult`` serialization and the same hierarchy statistics — because
batch results flow into the same content-addressed result cache as
fast-path results.  The kernel here is the fast path's loop body with
three transformations, none of which can change a bit:

* ``now = icount * inv_width + stall`` becomes ``now = now_base + stall``
  where ``now_base`` is precomputed.  ``icount`` is exactly
  representable in a float64 (instruction counts are far below 2**53)
  and IEEE-754 multiplication is correctly rounded in both numpy and
  CPython, so the precomputed product is the identical float.
* ``line = payload >> line_shift`` is precomputed — integer, exact.
* the L1-hit path of
  :meth:`repro.memory.hierarchy.CacheHierarchy.demand_access_fast` is
  inlined with its ``stats.accesses`` increment deferred to a single
  end-of-run adjustment (integer addition commutes); every cache-state
  mutation happens in the original order.

Lanes whose prefetcher overrides none of the :class:`Prefetcher` hooks
(``no-prefetch``) can never enqueue a candidate, so their queue,
in-flight table, and fill heap stay empty for the whole run and block
markers are no-ops; such *trivial* lanes run a reduced kernel over the
memory-access rows only.

Equivalence is enforced by :func:`repro.check.diff.diff_batch` and the
``tests/test_engine_batch.py`` digest pins.

Observability and invariant checking instrument the per-event engine
loop; rather than fork those code paths into the kernels, a batch run
that starts with :func:`repro.obs.enabled` or
:func:`repro.check.invariants.enabled` falls back to running each lane
through the ordinary fast path (bit-identical by definition).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro import obs
from repro.check import invariants
from repro.common.bitops import log2_exact
from repro.common.errors import ConfigError
from repro.memory.hierarchy import (
    FAST_L2_HIT_PREFETCH,
    FAST_MEMORY,
    CacheHierarchy,
)
from repro.prefetchers.base import DemandInfo, Prefetcher
from repro.sim.config import SimConfig
from repro.sim.results import DemandClass, SimResult
from repro.trace.events import BLOCK_BEGIN, MEMORY_ACCESS
from repro.trace.stream import Trace

try:  # numpy accelerates the shared decode; the backend works without it.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

#: Events decoded (and shared across every lane) per advance step.  Large
#: enough to amortize the per-chunk slice/materialize cost, small enough
#: that the decoded Python lists stay cache- and memory-friendly.
DEFAULT_CHUNK_EVENTS = 32768


@dataclass(frozen=True)
class BatchLane:
    """One simulation variant in a batch: a prefetcher name + machine.

    The prefetcher is named (registry syntax, including parametrized
    ``cbws[table_entries=N]`` spellings) rather than passed as an
    instance so a lane is exactly as content-addressable as the
    ``sim_key`` of the grid cell it materializes.
    """

    prefetcher: str
    config: SimConfig


class _LaneState:
    """Resumable per-lane machine state between chunk advances."""

    __slots__ = (
        "spec", "prefetcher", "hierarchy", "storage_bits", "trivial",
        # config-derived constants
        "inv_width", "width", "rob", "l2_extra", "mem_latency",
        "mshr_limit", "issue_interval", "queue_capacity", "max_in_flight",
        "line_size", "line_shift",
        # timing / window state
        "stall", "window_start_icount", "window_start_time", "window_end",
        "window_count",
        # prefetch path state
        "queue", "queued", "in_flight", "fill_heap", "next_issue",
        "caught_in_flight",
        # deferred result counters
        "n_demand", "n_l1_miss", "n_llc_miss", "n_timely", "n_shorter",
        "n_non_timely", "n_missing", "n_plain_hit", "n_issued", "n_fills",
        "prefetch_bytes", "demand_bytes", "n_inline_hits",
        # scratch
        "evictions",
    )

    def __init__(self, spec: BatchLane, prefetcher: Prefetcher) -> None:
        config = spec.config
        self.spec = spec
        self.prefetcher = prefetcher
        self.hierarchy = CacheHierarchy(config.hierarchy)
        # Captured before any event, exactly when the fast path reads it.
        self.storage_bits = prefetcher.storage_bits()
        self.trivial = _is_trivial(prefetcher)

        core = config.core
        self.inv_width = 1.0 / core.width
        self.width = core.width
        self.rob = core.rob_entries
        self.l2_extra = float(core.l2_latency - core.l1_latency)
        self.mem_latency = float(core.memory_latency)
        self.mshr_limit = config.hierarchy.l1.mshrs
        self.issue_interval = float(config.prefetch.issue_interval)
        self.queue_capacity = config.prefetch.queue_capacity
        self.max_in_flight = config.prefetch.max_in_flight
        self.line_size = config.hierarchy.line_size
        self.line_shift = log2_exact(self.line_size)

        self.stall = 0.0
        self.window_start_icount = -1  # -1 means no open window
        self.window_start_time = 0.0
        self.window_end = 0.0
        self.window_count = 0

        self.queue: deque[int] = deque()
        self.queued: set[int] = set()
        self.in_flight: dict[int, float] = {}
        self.fill_heap: list[tuple[float, int]] = []
        self.next_issue = 0.0
        self.caught_in_flight = 0

        self.n_demand = 0
        self.n_l1_miss = 0
        self.n_llc_miss = 0
        self.n_timely = 0
        self.n_shorter = 0
        self.n_non_timely = 0
        self.n_missing = 0
        self.n_plain_hit = 0
        self.n_issued = 0
        self.n_fills = 0
        self.prefetch_bytes = 0
        self.demand_bytes = 0
        self.n_inline_hits = 0

        self.evictions: list[int] = []


def _is_trivial(prefetcher: Prefetcher) -> bool:
    """True when every engine-facing hook is the base-class no-op.

    Such a prefetcher can never produce a candidate, so the lane's
    prefetch path stays empty for the whole run and block markers have
    no effect — the reduced memory-rows-only kernel applies.
    """
    cls = type(prefetcher)
    return (
        cls.on_access is Prefetcher.on_access
        and cls.on_block_begin is Prefetcher.on_block_begin
        and cls.on_block_end is Prefetcher.on_block_end
        and cls.on_l1_eviction is Prefetcher.on_l1_eviction
    )


class _SharedColumns:
    """The chunk decoder shared by every lane of one batch run.

    Holds the trace's columns (as numpy views when numpy is importable)
    plus the per-``line_shift`` line columns and per-``width`` retire
    time columns the lanes need, and materializes plain-Python chunk
    lists on demand — once per chunk, not once per lane.
    """

    def __init__(self, trace: Trace, shifts: Sequence[int],
                 widths: Sequence[int]) -> None:
        columns = trace.columns()
        self.length = len(columns)
        self._shifts = tuple(sorted(set(shifts)))
        self._widths = tuple(sorted(set(widths)))
        if _np is not None:
            self._kinds = _np.frombuffer(columns.kinds, dtype=_np.uint8)
            self._icounts = _np.frombuffer(columns.icounts, dtype=_np.uint64)
            self._pcs = _np.frombuffer(columns.pcs, dtype=_np.uint64)
            self._payloads = _np.frombuffer(columns.payloads,
                                            dtype=_np.uint64)
            self._writes = _np.frombuffer(columns.writes, dtype=_np.uint8)
        else:
            self._kinds = columns.kinds
            self._icounts = columns.icounts
            self._pcs = columns.pcs
            self._payloads = columns.payloads
            self._writes = columns.writes

    def chunk(self, start: int, stop: int) -> dict:
        """Decode one ``[start, stop)`` slice into shared Python lists."""
        if _np is not None:
            payloads = self._payloads[start:stop]
            icounts = self._icounts[start:stop]
            return {
                "kinds": self._kinds[start:stop].tolist(),
                "icounts": icounts.tolist(),
                "pcs": self._pcs[start:stop].tolist(),
                "payloads": payloads.tolist(),
                "writes": self._writes[start:stop].astype(bool).tolist(),
                "lines": {shift: (payloads >> shift).tolist()
                          for shift in self._shifts},
                "nows": {width: (icounts * (1.0 / width)).tolist()
                         for width in self._widths},
            }
        icounts = self._icounts[start:stop].tolist()
        payloads = self._payloads[start:stop].tolist()
        return {
            "kinds": self._kinds[start:stop].tolist(),
            "icounts": icounts,
            "pcs": self._pcs[start:stop].tolist(),
            "payloads": payloads,
            "writes": [bool(w) for w in self._writes[start:stop]],
            "lines": {shift: [p >> shift for p in payloads]
                      for shift in self._shifts},
            "nows": {width: [ic * (1.0 / width) for ic in icounts]
                     for width in self._widths},
        }

    def memory_rows(self, shifts: Sequence[int],
                    widths: Sequence[int]) -> dict:
        """Gathered MEMORY_ACCESS-only columns for the trivial kernel."""
        shifts = tuple(sorted(set(shifts)))
        widths = tuple(sorted(set(widths)))
        if _np is not None:
            mask = self._kinds == MEMORY_ACCESS
            icounts = self._icounts[mask]
            payloads = self._payloads[mask]
            return {
                "length": int(mask.sum()),
                "icounts": icounts.tolist(),
                "lines": {shift: (payloads >> shift).tolist()
                          for shift in shifts},
                "nows": {width: (icounts * (1.0 / width)).tolist()
                         for width in widths},
            }
        rows = [index for index, kind in enumerate(self._kinds)
                if kind == MEMORY_ACCESS]
        icounts = [self._icounts[index] for index in rows]
        payloads = [self._payloads[index] for index in rows]
        return {
            "length": len(rows),
            "icounts": icounts,
            "lines": {shift: [p >> shift for p in payloads]
                      for shift in shifts},
            "nows": {width: [ic * (1.0 / width) for ic in icounts]
                     for width in widths},
        }


def _advance(lane: _LaneState, kinds: list, icounts: list, pcs: list,
             payloads: list, writes: list, lines: list,
             nows: list) -> None:
    """Advance one general lane over one decoded chunk.

    This is :meth:`SimulationEngine.run`'s loop body operating on the
    shared precomputed columns, with the lane's machine state loaded
    into locals for the duration of the chunk and stored back at the
    end.  Every floating-point operation happens in the same order on
    the same values as the fast path (see the module docstring).
    """
    rob = lane.rob
    inv_width = lane.inv_width
    l2_extra = lane.l2_extra
    mem_latency = lane.mem_latency
    mshr_limit = lane.mshr_limit
    issue_interval = lane.issue_interval
    queue_capacity = lane.queue_capacity
    max_in_flight = lane.max_in_flight
    line_size = lane.line_size

    stall = lane.stall
    window_start_icount = lane.window_start_icount
    window_start_time = lane.window_start_time
    window_end = lane.window_end
    window_count = lane.window_count

    queue = lane.queue
    queued = lane.queued
    in_flight = lane.in_flight
    fill_heap = lane.fill_heap
    next_issue = lane.next_issue
    caught_in_flight = lane.caught_in_flight

    n_demand = lane.n_demand
    n_l1_miss = lane.n_l1_miss
    n_llc_miss = lane.n_llc_miss
    n_timely = lane.n_timely
    n_shorter = lane.n_shorter
    n_non_timely = lane.n_non_timely
    n_missing = lane.n_missing
    n_plain_hit = lane.n_plain_hit
    n_issued = lane.n_issued
    n_fills = lane.n_fills
    prefetch_bytes = lane.prefetch_bytes
    demand_bytes = lane.demand_bytes
    n_inline_hits = lane.n_inline_hits
    evictions = lane.evictions

    heappush = heapq.heappush
    heappop = heapq.heappop
    queue_popleft = queue.popleft
    queue_append = queue.append
    queued_discard = queued.discard
    queued_add = queued.add
    in_flight_pop = in_flight.pop
    hierarchy = lane.hierarchy
    demand_access_fast = hierarchy.demand_access_fast
    prefetch_fill_fast = hierarchy.prefetch_fill_fast
    l1_sets = hierarchy.l1._sets
    l1_mask = hierarchy.l1._index_mask
    l2_sets = hierarchy.l2._sets
    l2_mask = hierarchy.l2._index_mask
    prefetcher = lane.prefetcher
    on_access = prefetcher.on_access
    on_block_begin = prefetcher.on_block_begin
    on_block_end = prefetcher.on_block_end
    on_l1_eviction = prefetcher.on_l1_eviction

    for kind, icount, pc, payload, write, line, now_base in zip(
        kinds, icounts, pcs, payloads, writes, lines, nows
    ):
        now = now_base + stall

        if kind == MEMORY_ACCESS:
            # -- issue_prefetches: queued candidates consume bandwidth.
            while queue and next_issue <= now and len(in_flight) < max_in_flight:
                pline = queue_popleft()
                if pline not in queued:
                    continue  # stale: consumed by a demand access already
                queued_discard(pline)
                if pline in l2_sets[pline & l2_mask] or pline in in_flight:
                    continue  # redundant; never reaches the bus
                completion = next_issue + mem_latency
                in_flight[pline] = completion
                heappush(fill_heap, (completion, pline))
                n_issued += 1
                prefetch_bytes += line_size
                next_issue += issue_interval
            # -- drain_completions: install finished prefetches.
            while fill_heap and fill_heap[0][0] <= now:
                completion, pline = heappop(fill_heap)
                if in_flight.get(pline) != completion:
                    continue  # cancelled: the demand stream claimed it
                del in_flight[pline]
                if prefetch_fill_fast(pline, evictions):
                    n_fills += 1
                    if evictions:
                        for evicted in evictions:
                            on_l1_eviction(evicted)
                        evictions.clear()

            l1_set = l1_sets[line & l1_mask]
            if line in l1_set:
                # demand_access_fast's L1-hit path inlined; only the
                # stats.accesses increment is deferred (via
                # n_inline_hits) to the end-of-run adjustment.
                l1_set[line] = False
                l1_set.move_to_end(line)
                l2_set = l2_sets[line & l2_mask]
                if line in l2_set:
                    l2_set[line] = False
                    l2_set.move_to_end(line)
                n_demand += 1
                n_inline_hits += 1
                info_l1_hit = True
                info_l2_hit = True
            else:
                code = demand_access_fast(line, evictions)
                n_demand += 1
                n_l1_miss += 1
                info_l1_hit = False
                latency = 0.0
                if code < FAST_MEMORY:  # either L2-hit code
                    info_l2_hit = True
                    latency = l2_extra
                    if code == FAST_L2_HIT_PREFETCH:
                        n_timely += 1
                    else:
                        n_plain_hit += 1
                else:  # memory
                    info_l2_hit = False
                    completion = in_flight_pop(line, None)
                    if completion is not None:
                        # Prefetch in flight: wait out the remainder.
                        latency = max(0.0, completion - now)
                        n_shorter += 1
                        caught_in_flight += 1
                    elif line in queued:
                        queued_discard(line)
                        latency = mem_latency
                        n_non_timely += 1
                        n_llc_miss += 1
                        demand_bytes += line_size
                    else:
                        latency = mem_latency
                        n_missing += 1
                        n_llc_miss += 1
                        demand_bytes += line_size

                # MLP interval model: join the open miss window when
                # this miss issues under it, else close it (charging
                # its pending stall) and open a fresh one.
                if (
                    window_start_icount >= 0
                    and icount - window_start_icount <= rob
                    and now < window_end
                    and window_count < mshr_limit
                ):
                    if now + latency > window_end:
                        window_end = now + latency
                    window_count += 1
                else:
                    if window_start_icount >= 0:
                        progress = min(
                            icount - window_start_icount, rob
                        ) * inv_width
                        pending = (window_end - window_start_time) - progress
                        if pending > 0.0:
                            stall += pending
                        now = now_base + stall
                    window_start_icount = icount
                    window_start_time = now
                    window_end = now + latency
                    window_count = 1

                if evictions:
                    for evicted in evictions:
                        on_l1_eviction(evicted)
                    evictions.clear()

            candidates = on_access(
                DemandInfo(pc, line, payload, write,
                           info_l1_hit, info_l2_hit)
            )
            # -- enqueue_candidates --------------------------------------
            if candidates:
                if not queue and next_issue < now:
                    next_issue = now
                for cand in candidates:
                    if (
                        cand in queued
                        or cand in in_flight
                        or cand in l2_sets[cand & l2_mask]
                    ):
                        continue
                    if len(queue) >= queue_capacity:
                        break  # hardware queue full; newest drop
                    queue_append(cand)
                    queued_add(cand)

        elif kind == BLOCK_BEGIN:
            on_block_begin(payload)
        else:  # BLOCK_END
            while queue and next_issue <= now and len(in_flight) < max_in_flight:
                pline = queue_popleft()
                if pline not in queued:
                    continue
                queued_discard(pline)
                if pline in l2_sets[pline & l2_mask] or pline in in_flight:
                    continue
                completion = next_issue + mem_latency
                in_flight[pline] = completion
                heappush(fill_heap, (completion, pline))
                n_issued += 1
                prefetch_bytes += line_size
                next_issue += issue_interval
            while fill_heap and fill_heap[0][0] <= now:
                completion, pline = heappop(fill_heap)
                if in_flight.get(pline) != completion:
                    continue
                del in_flight[pline]
                if prefetch_fill_fast(pline, evictions):
                    n_fills += 1
                    if evictions:
                        for evicted in evictions:
                            on_l1_eviction(evicted)
                        evictions.clear()
            candidates = on_block_end(payload)
            if candidates:
                if not queue and next_issue < now:
                    next_issue = now
                for cand in candidates:
                    if (
                        cand in queued
                        or cand in in_flight
                        or cand in l2_sets[cand & l2_mask]
                    ):
                        continue
                    if len(queue) >= queue_capacity:
                        break
                    queue_append(cand)
                    queued_add(cand)

    lane.stall = stall
    lane.window_start_icount = window_start_icount
    lane.window_start_time = window_start_time
    lane.window_end = window_end
    lane.window_count = window_count
    lane.next_issue = next_issue
    lane.caught_in_flight = caught_in_flight
    lane.n_demand = n_demand
    lane.n_l1_miss = n_l1_miss
    lane.n_llc_miss = n_llc_miss
    lane.n_timely = n_timely
    lane.n_shorter = n_shorter
    lane.n_non_timely = n_non_timely
    lane.n_missing = n_missing
    lane.n_plain_hit = n_plain_hit
    lane.n_issued = n_issued
    lane.n_fills = n_fills
    lane.prefetch_bytes = prefetch_bytes
    lane.demand_bytes = demand_bytes
    lane.n_inline_hits = n_inline_hits


def _advance_trivial(lane: _LaneState, icounts: list, lines: list,
                     nows: list) -> None:
    """Advance one trivial (no-hook) lane over gathered memory rows.

    A trivial lane's prefetch path is provably empty for the whole run
    (no hook ever returns a candidate), so the issue/drain loops, the
    in-flight probe, the candidate enqueue, and the block-marker
    handling all reduce to nothing and the kernel touches only the
    hierarchy, the counters, and the MLP window.
    """
    rob = lane.rob
    inv_width = lane.inv_width
    l2_extra = lane.l2_extra
    mem_latency = lane.mem_latency
    mshr_limit = lane.mshr_limit
    line_size = lane.line_size

    stall = lane.stall
    window_start_icount = lane.window_start_icount
    window_start_time = lane.window_start_time
    window_end = lane.window_end
    window_count = lane.window_count

    n_demand = lane.n_demand
    n_l1_miss = lane.n_l1_miss
    n_llc_miss = lane.n_llc_miss
    n_timely = lane.n_timely
    n_plain_hit = lane.n_plain_hit
    n_missing = lane.n_missing
    demand_bytes = lane.demand_bytes
    n_inline_hits = lane.n_inline_hits
    evictions = lane.evictions

    hierarchy = lane.hierarchy
    demand_access_fast = hierarchy.demand_access_fast
    l1_sets = hierarchy.l1._sets
    l1_mask = hierarchy.l1._index_mask
    l2_sets = hierarchy.l2._sets
    l2_mask = hierarchy.l2._index_mask

    for icount, line, now_base in zip(icounts, lines, nows):
        l1_set = l1_sets[line & l1_mask]
        if line in l1_set:
            l1_set[line] = False
            l1_set.move_to_end(line)
            l2_set = l2_sets[line & l2_mask]
            if line in l2_set:
                l2_set[line] = False
                l2_set.move_to_end(line)
            n_demand += 1
            n_inline_hits += 1
            continue

        code = demand_access_fast(line, evictions)
        n_demand += 1
        n_l1_miss += 1
        now = now_base + stall
        if code < FAST_MEMORY:
            latency = l2_extra
            if code == FAST_L2_HIT_PREFETCH:  # unreachable: no prefetches
                n_timely += 1
            else:
                n_plain_hit += 1
        else:
            # With an empty prefetch path every memory access is MISSING.
            latency = mem_latency
            n_missing += 1
            n_llc_miss += 1
            demand_bytes += line_size

        if (
            window_start_icount >= 0
            and icount - window_start_icount <= rob
            and now < window_end
            and window_count < mshr_limit
        ):
            if now + latency > window_end:
                window_end = now + latency
            window_count += 1
        else:
            if window_start_icount >= 0:
                progress = min(
                    icount - window_start_icount, rob
                ) * inv_width
                pending = (window_end - window_start_time) - progress
                if pending > 0.0:
                    stall += pending
                now = now_base + stall
            window_start_icount = icount
            window_start_time = now
            window_end = now + latency
            window_count = 1

        if evictions:
            evictions.clear()  # on_l1_eviction is the base no-op

    lane.stall = stall
    lane.window_start_icount = window_start_icount
    lane.window_start_time = window_start_time
    lane.window_end = window_end
    lane.window_count = window_count
    lane.n_demand = n_demand
    lane.n_l1_miss = n_l1_miss
    lane.n_llc_miss = n_llc_miss
    lane.n_timely = n_timely
    lane.n_plain_hit = n_plain_hit
    lane.n_missing = n_missing
    lane.demand_bytes = demand_bytes
    lane.n_inline_hits = n_inline_hits


class BatchSimulationEngine:
    """Simulates one trace against many lanes with shared decoding.

    Args:
        lanes: the (prefetcher, config) variants to run.  Lanes may mix
            machine configurations (line sizes, widths, MSHR budgets);
            shared columns are precomputed per distinct shift/width.
        chunk_events: events decoded per advance step.

    After :meth:`run`, ``hierarchies`` holds each lane's
    :class:`~repro.memory.hierarchy.CacheHierarchy` (position-matched to
    ``lanes``) for the differential harness to inspect.
    """

    def __init__(self, lanes: Sequence[BatchLane],
                 chunk_events: int = DEFAULT_CHUNK_EVENTS) -> None:
        if not lanes:
            raise ConfigError("a batch needs at least one lane")
        if chunk_events < 1:
            raise ConfigError("chunk_events must be positive")
        self.lanes = list(lanes)
        self.chunk_events = chunk_events
        self.hierarchies: list[CacheHierarchy] = []

    def run(self, trace: Trace) -> list[SimResult]:
        """Simulate every lane over ``trace``; results in lane order."""
        from repro.harness.registry import make_prefetcher

        if obs.enabled() or invariants.enabled():
            # Profiling and invariant checks live in the per-event
            # engine; delegate so their semantics (and costs) apply.
            from repro.sim.engine import SimulationEngine

            self.hierarchies = []
            results = []
            for spec in self.lanes:
                engine = SimulationEngine(spec.config,
                                          make_prefetcher(spec.prefetcher))
                results.append(engine.run(trace))
                self.hierarchies.append(engine.hierarchy)
            return results

        states = [_LaneState(spec, make_prefetcher(spec.prefetcher))
                  for spec in self.lanes]
        self.hierarchies = [state.hierarchy for state in states]

        general = [state for state in states if not state.trivial]
        trivial = [state for state in states if state.trivial]

        if general:
            shared = _SharedColumns(
                trace,
                shifts=[state.line_shift for state in general],
                widths=[state.width for state in general],
            )
            chunk_events = self.chunk_events
            for start in range(0, shared.length, chunk_events):
                stop = min(start + chunk_events, shared.length)
                chunk = shared.chunk(start, stop)
                kinds = chunk["kinds"]
                icounts = chunk["icounts"]
                pcs = chunk["pcs"]
                payloads = chunk["payloads"]
                writes = chunk["writes"]
                for state in general:
                    _advance(
                        state, kinds, icounts, pcs, payloads, writes,
                        chunk["lines"][state.line_shift],
                        chunk["nows"][state.width],
                    )
        if trivial:
            shared = _SharedColumns(trace, shifts=[], widths=[])
            rows = shared.memory_rows(
                shifts=[state.line_shift for state in trivial],
                widths=[state.width for state in trivial],
            )
            chunk_events = self.chunk_events
            icounts = rows["icounts"]
            for start in range(0, rows["length"], chunk_events):
                stop = min(start + chunk_events, rows["length"])
                icount_chunk = icounts[start:stop]
                for state in trivial:
                    _advance_trivial(
                        state, icount_chunk,
                        rows["lines"][state.line_shift][start:stop],
                        rows["nows"][state.width][start:stop],
                    )

        return [self._finalize(state, trace) for state in states]

    @staticmethod
    def _finalize(lane: _LaneState, trace: Trace) -> SimResult:
        """Close the final window and flush counters, as the engine does."""
        inv_width = lane.inv_width
        if lane.window_start_icount >= 0:
            progress = min(
                trace.instructions - lane.window_start_icount, lane.rob
            ) * inv_width
            pending = (lane.window_end - lane.window_start_time) - progress
            if pending > 0.0:
                lane.stall += pending
            lane.window_start_icount = -1

        hierarchy = lane.hierarchy
        # Settle the deferred stats.accesses increments of the inlined
        # L1-hit path; every other statistic was maintained inline.
        hierarchy.stats.accesses += lane.n_inline_hits
        lane.n_inline_hits = 0

        result = SimResult(
            workload=trace.name,
            prefetcher=lane.prefetcher.name,
            instructions=trace.instructions,
            storage_bits=lane.storage_bits,
        )
        result.demand_accesses = lane.n_demand
        result.l1_misses = lane.n_l1_miss
        result.llc_misses = lane.n_llc_miss
        result.prefetches_issued = lane.n_issued
        result.prefetch_fills = lane.n_fills
        result.prefetch_bytes_read = lane.prefetch_bytes
        result.demand_bytes_read = lane.demand_bytes
        classes = result.classes
        classes[DemandClass.TIMELY] = lane.n_timely
        classes[DemandClass.SHORTER_WAITING] = lane.n_shorter
        classes[DemandClass.NON_TIMELY] = lane.n_non_timely
        classes[DemandClass.MISSING] = lane.n_missing
        classes[DemandClass.PLAIN_HIT] = lane.n_plain_hit

        result.cycles = trace.instructions * inv_width + lane.stall
        result.useful_prefetches = (
            hierarchy.stats.useful_prefetch_hits + lane.caught_in_flight
        )
        leftover_unused = sum(
            1
            for resident in hierarchy.l2.resident_lines()
            if hierarchy.l2.is_unused_prefetch(resident)
        )
        result.wrong_prefetches = (
            hierarchy.stats.wrong_prefetch_evictions
            + leftover_unused
            + len(lane.in_flight)
        )
        return result


def simulate_batch(
    lanes: Sequence[BatchLane], trace: Trace,
    chunk_events: int = DEFAULT_CHUNK_EVENTS,
) -> list[SimResult]:
    """Run one batch over ``trace`` on fresh machines; results in order."""
    return BatchSimulationEngine(lanes, chunk_events=chunk_events).run(trace)


def lanes_for(prefetchers: Sequence[str], config: SimConfig) -> list[BatchLane]:
    """Lanes for one grid row: many prefetchers, one machine config."""
    return [BatchLane(prefetcher=name, config=config) for name in prefetchers]


def iter_batches(items: Sequence, size: int) -> Iterator[Sequence]:
    """Split ``items`` into contiguous batches of at most ``size``."""
    if size < 1:
        raise ConfigError("batch size must be positive")
    for start in range(0, len(items), size):
        yield items[start:start + size]
