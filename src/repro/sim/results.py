"""Simulation results and the Figure 13 demand-access taxonomy."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.common.errors import ConfigError

#: Version of the serialized :class:`SimResult` layout.  Bump on any
#: field change; it is mixed into every result-cache key so stale cached
#: entries can never be deserialized into a newer schema.
RESULT_SCHEMA_VERSION = 1


class DemandClass(Enum):
    """Classification of one demand L2 access (Section VII-B).

    The five prefetcher-attributable outcomes of Figure 13, plus
    ``PLAIN_HIT`` for L2 hits on lines the prefetcher did not bring in
    (the remainder of demand accesses, not plotted by the paper).
    """

    #: Prefetch completed before the demand access; the miss was avoided.
    TIMELY = "timely"
    #: Prefetch was in flight; the demand waited only the remainder.
    SHORTER_WAITING = "shorter-waiting-time"
    #: The line was predicted and queued, but the prefetch was never issued.
    NON_TIMELY = "non-timely"
    #: No prefetch covered the line (never predicted, or evicted early).
    MISSING = "missing"
    #: L2 hit on a line that was not an unused prefetch.
    PLAIN_HIT = "plain-hit"


@dataclass
class SimResult:
    """Everything measured by one (workload, prefetcher) simulation.

    Attributes:
        workload / prefetcher: identifiers of the run.
        instructions: committed instructions.
        cycles: total execution cycles from the timing model.
        demand_accesses: committed loads + stores.
        l1_misses: demand accesses that reached the L2 (the Figure 13
            denominator).
        llc_misses: demand accesses that had to fetch from memory with no
            prefetch coverage (the *missing* and *non-timely* classes).
            Demands that catch an in-flight prefetch are counted as MSHR
            hits, not new misses, matching how gem5-based MPKI plots can
            reach ~0 while shorter-waiting fractions stay positive.  The
            Figure 12 numerator.
        classes: count per :class:`DemandClass`.
        prefetches_issued: prefetch requests sent to memory.
        prefetch_fills: prefetch lines actually installed in L2.
        useful_prefetches: prefetched lines later referenced by a demand
            access (timely + demand-caught-in-flight).
        wrong_prefetches: prefetched lines never referenced — evicted
            unused or still unused at end of simulation.
        demand_bytes_read / prefetch_bytes_read: memory read traffic.
        storage_bits: prefetcher hardware budget.
    """

    workload: str
    prefetcher: str
    instructions: int = 0
    cycles: float = 0.0
    demand_accesses: int = 0
    l1_misses: int = 0
    llc_misses: int = 0
    classes: dict[DemandClass, int] = field(
        default_factory=lambda: {cls: 0 for cls in DemandClass}
    )
    prefetches_issued: int = 0
    prefetch_fills: int = 0
    useful_prefetches: int = 0
    wrong_prefetches: int = 0
    demand_bytes_read: int = 0
    prefetch_bytes_read: int = 0
    storage_bits: int = 0
    #: True for the placeholder standing in for a cell the execution
    #: engine could not produce (quarantined or circuit-breaker
    #: DEGRADED).  Placeholder metrics are NaN, which the report layer
    #: renders as ``DEGRADED``; placeholders are never cached.
    degraded: bool = False

    @classmethod
    def degraded_cell(cls, workload: str, prefetcher: str) -> "SimResult":
        """The explicit hole for a cell that failed permanently."""
        return cls(workload=workload, prefetcher=prefetcher, degraded=True)

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        if self.degraded:
            return float("nan")
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def mpki(self) -> float:
        """Last-level-cache misses per kilo-instruction (Figure 12)."""
        if self.degraded:
            return float("nan")
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.llc_misses / self.instructions

    @property
    def bytes_read(self) -> float:
        """Total bytes read from memory (Figure 15 denominator)."""
        if self.degraded:
            return float("nan")
        return self.demand_bytes_read + self.prefetch_bytes_read

    @property
    def accuracy(self) -> float:
        """Useful prefetches over all issued (classical accuracy metric)."""
        if self.degraded:
            return float("nan")
        if self.prefetches_issued == 0:
            return 0.0
        return self.useful_prefetches / self.prefetches_issued

    def class_fraction(self, demand_class: DemandClass) -> float:
        """One Figure 13 bar segment: class count / demand L2 accesses."""
        if self.degraded:
            return float("nan")
        if self.l1_misses == 0:
            return 0.0
        return self.classes[demand_class] / self.l1_misses

    @property
    def wrong_fraction(self) -> float:
        """Wrong prefetches relative to demand L2 accesses (the Figure 13
        segment drawn above 100%)."""
        if self.degraded:
            return float("nan")
        if self.l1_misses == 0:
            return 0.0
        return self.wrong_prefetches / self.l1_misses

    def to_dict(self) -> dict[str, Any]:
        """Exact, versioned serialization (the result-cache payload).

        Unlike :func:`repro.harness.export.result_to_dict` this keeps only
        raw measured fields (no derived metrics) so that
        :meth:`from_dict` round-trips to an equal :class:`SimResult`.
        """
        if self.degraded:
            raise ConfigError(
                f"cell ({self.workload!r}, {self.prefetcher!r}) is a "
                "DEGRADED placeholder and cannot be serialized"
            )
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "workload": self.workload,
            "prefetcher": self.prefetcher,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "demand_accesses": self.demand_accesses,
            "l1_misses": self.l1_misses,
            "llc_misses": self.llc_misses,
            "classes": {cls.value: self.classes[cls] for cls in DemandClass},
            "prefetches_issued": self.prefetches_issued,
            "prefetch_fills": self.prefetch_fills,
            "useful_prefetches": self.useful_prefetches,
            "wrong_prefetches": self.wrong_prefetches,
            "demand_bytes_read": self.demand_bytes_read,
            "prefetch_bytes_read": self.prefetch_bytes_read,
            "storage_bits": self.storage_bits,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SimResult":
        """Rebuild a result serialized by :meth:`to_dict`."""
        schema = data.get("schema")
        if schema != RESULT_SCHEMA_VERSION:
            raise ConfigError(
                f"result schema {schema!r} does not match "
                f"version {RESULT_SCHEMA_VERSION}"
            )
        classes = {
            DemandClass(value): int(count)
            for value, count in data["classes"].items()
        }
        for demand_class in DemandClass:
            classes.setdefault(demand_class, 0)
        return cls(
            workload=data["workload"],
            prefetcher=data["prefetcher"],
            instructions=data["instructions"],
            cycles=data["cycles"],
            demand_accesses=data["demand_accesses"],
            l1_misses=data["l1_misses"],
            llc_misses=data["llc_misses"],
            classes=classes,
            prefetches_issued=data["prefetches_issued"],
            prefetch_fills=data["prefetch_fills"],
            useful_prefetches=data["useful_prefetches"],
            wrong_prefetches=data["wrong_prefetches"],
            demand_bytes_read=data["demand_bytes_read"],
            prefetch_bytes_read=data["prefetch_bytes_read"],
            storage_bits=data["storage_bits"],
        )

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.workload:<28s} {self.prefetcher:<10s} "
            f"IPC={self.ipc:6.3f} MPKI={self.mpki:7.2f} "
            f"timely={self.class_fraction(DemandClass.TIMELY):5.1%} "
            f"wrong={self.wrong_fraction:5.1%}"
        )
