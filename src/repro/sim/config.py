"""Simulation configuration (Table II).

Two canonical configurations are provided:

* :data:`PAPER_CONFIG` — the exact Table II machine: 32 KB L1s, a 2 MB
  inclusive L2, 300-cycle memory, 4-wide out-of-order core.
* :data:`REDUCED_CONFIG` — the default for experiments in this
  reproduction: the same structure with cache capacities scaled down
  (4 KB L1, 128 KB L2) so that workloads with proportionally scaled
  footprints exercise the same miss behaviour at pure-Python trace
  lengths.  EXPERIMENTS.md records which scale every experiment used.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.constants import DEFAULT_LINE_SIZE
from repro.common.errors import ConfigError
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig


@dataclass(frozen=True)
class CoreConfig:
    """Core timing parameters (Table II, CPU column).

    Attributes:
        width: out-of-order retire width.
        rob_entries: reorder buffer depth; misses further apart than this
            (in instructions) cannot overlap.
        l1_latency / l2_latency / memory_latency: access latencies in
            cycles.
    """

    width: int = 4
    rob_entries: int = 128
    l1_latency: int = 2
    l2_latency: int = 30
    memory_latency: int = 300

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ConfigError("core width must be positive")
        if self.rob_entries <= 0:
            raise ConfigError("ROB must have at least one entry")
        if self.l1_latency < 1 or self.l2_latency < 1 \
                or self.memory_latency < 1:
            raise ConfigError(
                "latencies must be at least one cycle: got "
                f"L1={self.l1_latency} L2={self.l2_latency} "
                f"memory={self.memory_latency}"
            )
        if not self.l1_latency <= self.l2_latency <= self.memory_latency:
            raise ConfigError(
                "latencies must be monotone: L1 <= L2 <= memory"
            )


@dataclass(frozen=True)
class PrefetchPathConfig:
    """The prefetch issue path between predictor and memory.

    Attributes:
        queue_capacity: candidates awaiting issue; overflow drops the
            newest candidates (hardware queues do not grow).
        issue_interval: cycles between consecutive prefetch issues — the
            bandwidth knob that makes *non-timely* and
            *shorter-waiting-time* outcomes possible.
        max_in_flight: outstanding prefetches (L2 MSHRs dedicated to
            prefetch traffic).
    """

    queue_capacity: int = 64
    issue_interval: int = 8
    max_in_flight: int = 32

    def __post_init__(self) -> None:
        if self.queue_capacity <= 0 or self.max_in_flight <= 0:
            raise ConfigError("prefetch queue and MSHR counts must be positive")
        if self.issue_interval <= 0:
            raise ConfigError("prefetch issue interval must be positive")


@dataclass(frozen=True)
class SimConfig:
    """Complete machine configuration."""

    hierarchy: HierarchyConfig
    core: CoreConfig = field(default_factory=CoreConfig)
    prefetch: PrefetchPathConfig = field(default_factory=PrefetchPathConfig)


def _hierarchy(l1_kb: int, l2_kb: int, core: CoreConfig) -> HierarchyConfig:
    return HierarchyConfig(
        l1=CacheConfig(
            name="L1D",
            size_bytes=l1_kb * 1024,
            associativity=4,
            line_size=DEFAULT_LINE_SIZE,
            latency=core.l1_latency,
            mshrs=4,
        ),
        l2=CacheConfig(
            name="L2",
            size_bytes=l2_kb * 1024,
            associativity=8,
            line_size=DEFAULT_LINE_SIZE,
            latency=core.l2_latency,
            mshrs=32,
        ),
    )


_CORE = CoreConfig()

#: The exact Table II machine.
PAPER_CONFIG = SimConfig(hierarchy=_hierarchy(32, 2048, _CORE), core=_CORE)

#: Table II with scaled-down cache capacities (see module docstring).
REDUCED_CONFIG = SimConfig(hierarchy=_hierarchy(4, 128, _CORE), core=_CORE)
