"""Trace-driven timing simulation.

The gem5 substitute: a simplified out-of-order timing model driven by the
commit-order trace.  Cycles advance with instruction retirement (4-wide),
demand misses stall the core with MSHR-limited overlap between nearby
misses (memory-level parallelism inside the ROB window), and prefetches
occupy a bandwidth-limited issue queue plus an in-flight table so that
*timeliness* — did the prefetch complete before the demand arrived? — is
a first-class simulation outcome.
"""

from repro.sim.config import (
    PAPER_CONFIG,
    REDUCED_CONFIG,
    CoreConfig,
    PrefetchPathConfig,
    SimConfig,
)
from repro.sim.batch import (
    BatchLane,
    BatchSimulationEngine,
    lanes_for,
    simulate_batch,
)
from repro.sim.engine import SimulationEngine, simulate
from repro.sim.results import DemandClass, SimResult

__all__ = [
    "CoreConfig",
    "PrefetchPathConfig",
    "SimConfig",
    "PAPER_CONFIG",
    "REDUCED_CONFIG",
    "SimulationEngine",
    "simulate",
    "BatchLane",
    "BatchSimulationEngine",
    "lanes_for",
    "simulate_batch",
    "DemandClass",
    "SimResult",
]
