"""IR node definitions.

Expressions are pure (no memory side effects) and evaluate to Python
integers.  Memory traffic happens only through :class:`Load` and
:class:`Store` statements, which is what lets the interpreter emit an
exact commit-order access trace.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.common.errors import ValidationError

# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


class Expr:
    """Base class for integer-valued expressions.

    Operator overloads build :class:`BinOp` trees so kernels read like the
    C loops they model, e.g. ``v("i") + nx * (v("j") + ny * v("k"))``.
    """

    __slots__ = ()

    def __add__(self, other: "Expr | int") -> "BinOp":
        return BinOp("+", self, _wrap(other))

    def __radd__(self, other: int) -> "BinOp":
        return BinOp("+", _wrap(other), self)

    def __sub__(self, other: "Expr | int") -> "BinOp":
        return BinOp("-", self, _wrap(other))

    def __rsub__(self, other: int) -> "BinOp":
        return BinOp("-", _wrap(other), self)

    def __mul__(self, other: "Expr | int") -> "BinOp":
        return BinOp("*", self, _wrap(other))

    def __rmul__(self, other: int) -> "BinOp":
        return BinOp("*", _wrap(other), self)

    def __floordiv__(self, other: "Expr | int") -> "BinOp":
        return BinOp("//", self, _wrap(other))

    def __mod__(self, other: "Expr | int") -> "BinOp":
        return BinOp("%", self, _wrap(other))

    def __and__(self, other: "Expr | int") -> "BinOp":
        return BinOp("&", self, _wrap(other))

    def __or__(self, other: "Expr | int") -> "BinOp":
        return BinOp("|", self, _wrap(other))

    def __xor__(self, other: "Expr | int") -> "BinOp":
        return BinOp("^", self, _wrap(other))

    def __lshift__(self, other: "Expr | int") -> "BinOp":
        return BinOp("<<", self, _wrap(other))

    def __rshift__(self, other: "Expr | int") -> "BinOp":
        return BinOp(">>", self, _wrap(other))

    # Comparisons produce 0/1 integers, mirroring C semantics.
    def lt(self, other: "Expr | int") -> "BinOp":
        return BinOp("<", self, _wrap(other))

    def le(self, other: "Expr | int") -> "BinOp":
        return BinOp("<=", self, _wrap(other))

    def gt(self, other: "Expr | int") -> "BinOp":
        return BinOp(">", self, _wrap(other))

    def ge(self, other: "Expr | int") -> "BinOp":
        return BinOp(">=", self, _wrap(other))

    def eq(self, other: "Expr | int") -> "BinOp":
        return BinOp("==", self, _wrap(other))

    def ne(self, other: "Expr | int") -> "BinOp":
        return BinOp("!=", self, _wrap(other))


class Const(Expr):
    """An integer literal."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = int(value)

    def __repr__(self) -> str:
        return f"Const({self.value})"


class Var(Expr):
    """A reference to a scalar variable."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


#: Operators supported by :class:`BinOp`, mapped to their evaluators.
BINOP_EVALUATORS: dict[str, Callable[[int, int], int]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b if b else 0,
    "%": lambda a, b: a % b if b else 0,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "min": min,
    "max": max,
}


class BinOp(Expr):
    """A binary operation over two sub-expressions."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr) -> None:
        if op not in BINOP_EVALUATORS:
            raise ValidationError(f"unsupported operator {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def __repr__(self) -> str:
        return f"BinOp({self.op!r}, {self.lhs!r}, {self.rhs!r})"


def _wrap(value: "Expr | int") -> Expr:
    if isinstance(value, Expr):
        return value
    return Const(value)


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


class Statement:
    """Base class for IR statements."""

    __slots__ = ()


class Assign(Statement):
    """``dst = expr`` — scalar assignment; costs one instruction."""

    __slots__ = ("dst", "expr")

    def __init__(self, dst: str, expr: Expr | int) -> None:
        self.dst = dst
        self.expr = _wrap(expr)


class Load(Statement):
    """``dst = array[index]`` — a committed load.

    The loaded value is bound to ``dst`` when given, which is how kernels
    express data-dependent access patterns (histogram indices, pointer
    chasing).  Each static Load is assigned a unique ``pc`` by
    :func:`repro.ir.validate.number_kernel`.
    """

    __slots__ = ("array", "index", "dst", "pc")

    def __init__(self, array: str, index: Expr | int, dst: str | None = None) -> None:
        self.array = array
        self.index = _wrap(index)
        self.dst = dst
        self.pc: int = -1


class Store(Statement):
    """``array[index] = value`` — a committed store.

    ``value`` defaults to zero; it only matters when a later Load reads
    the location back (e.g. the histogram increment in histo).
    """

    __slots__ = ("array", "index", "value", "pc")

    def __init__(
        self, array: str, index: Expr | int, value: Expr | int = 0
    ) -> None:
        self.array = array
        self.index = _wrap(index)
        self.value = _wrap(value)
        self.pc: int = -1


class Compute(Statement):
    """``count`` ALU instructions with no memory traffic.

    Used to model the arithmetic between memory operations, which sets the
    memory intensity (MPKI denominator) of a kernel.
    """

    __slots__ = ("count",)

    def __init__(self, count: int = 1) -> None:
        if count < 0:
            raise ValidationError(f"Compute count must be non-negative: {count}")
        self.count = count


class If(Statement):
    """Conditional execution; the compare/branch costs one instruction."""

    __slots__ = ("cond", "then_body", "else_body")

    def __init__(
        self,
        cond: Expr,
        then_body: Sequence[Statement],
        else_body: Sequence[Statement] = (),
    ) -> None:
        self.cond = cond
        self.then_body = list(then_body)
        self.else_body = list(else_body)


class For(Statement):
    """A counted loop: ``for var in range(start, stop, step)``.

    ``start``/``stop`` may reference outer loop variables.  ``block_id``
    is ``None`` until the annotation pass marks the loop as a tight
    innermost code block, after which the interpreter brackets every
    iteration with ``BLOCK_BEGIN(block_id)`` / ``BLOCK_END(block_id)``.
    """

    __slots__ = ("var", "start", "stop", "step", "body", "block_id", "no_block")

    def __init__(
        self,
        var: str,
        start: Expr | int,
        stop: Expr | int,
        body: Sequence[Statement],
        step: int = 1,
        no_block: bool = False,
    ) -> None:
        if step == 0:
            raise ValidationError("For step must be non-zero")
        self.var = var
        self.start = _wrap(start)
        self.stop = _wrap(stop)
        self.step = step
        self.body = list(body)
        self.block_id: int | None = None
        #: Pragma telling the annotation pass to skip this loop, modelling
        #: code the compiler declines to tag (e.g. loops with calls).
        self.no_block = no_block


class While(Statement):
    """A condition-controlled loop, used for pointer chasing.

    ``max_iterations`` is a safety valve against non-terminating kernels;
    exceeding it raises at runtime rather than hanging the interpreter.
    """

    __slots__ = ("cond", "body", "block_id", "no_block", "max_iterations")

    def __init__(
        self,
        cond: Expr,
        body: Sequence[Statement],
        no_block: bool = False,
        max_iterations: int = 100_000_000,
    ) -> None:
        self.cond = cond
        self.body = list(body)
        self.block_id: int | None = None
        self.no_block = no_block
        self.max_iterations = max_iterations


LoopStatement = (For, While)


# --------------------------------------------------------------------------
# Kernels
# --------------------------------------------------------------------------


class ArrayDecl:
    """Declaration of one kernel array.

    Attributes:
        name: array identifier used by Load/Store statements.
        length: number of elements.
        element_size: bytes per element (drives spatial locality).
        init: optional callable ``(rng) -> np.ndarray`` producing initial
            contents (int64, length ``length``).  Defaults to zeros.
    """

    __slots__ = ("name", "length", "element_size", "init")

    def __init__(
        self,
        name: str,
        length: int,
        element_size: int = 8,
        init: Callable[[np.random.Generator], np.ndarray] | None = None,
    ) -> None:
        if length <= 0:
            raise ValidationError(f"array '{name}': length must be positive")
        if element_size <= 0:
            raise ValidationError(f"array '{name}': element size must be positive")
        self.name = name
        self.length = length
        self.element_size = element_size
        self.init = init


class Kernel:
    """A complete workload kernel: arrays plus a loop-structured body."""

    def __init__(
        self,
        name: str,
        arrays: Sequence[ArrayDecl],
        body: Sequence[Statement],
    ) -> None:
        self.name = name
        self.arrays = list(arrays)
        self.body = list(body)
        names = [decl.name for decl in self.arrays]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValidationError(
                f"kernel '{name}': duplicate array declarations {sorted(duplicates)}"
            )

    def __repr__(self) -> str:
        return (
            f"Kernel(name={self.name!r}, arrays={len(self.arrays)}, "
            f"statements={len(self.body)})"
        )
