"""Compiling backend: lowers a kernel to a Python function.

The interpreter (:mod:`repro.ir.interp`) is the reference semantics; it
walks the IR tree for every executed statement.  This module instead
*lowers* the kernel once into Python source — loops become ``for``/
``while`` statements, expressions become Python expressions, memory
operations become event appends — and executes the compiled function.
The emitted trace is bit-identical to the interpreter's (the test suite
asserts this across the whole workload suite) at a fraction of the cost,
which is what makes full-budget 30-benchmark sweeps practical.

Usage::

    compiled = compile_kernel(kernel)
    trace = compiled.run(seed=0, limits=ExecutionLimits(...))
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import WorkloadError
from repro.ir.interp import ExecutionLimits
from repro.ir.nodes import (
    Assign,
    BinOp,
    Compute,
    Const,
    Expr,
    For,
    If,
    Kernel,
    Load,
    Statement,
    Store,
    Var,
    While,
)
from repro.ir.validate import number_kernel
from repro.trace.events import BlockBegin, BlockEnd, MemoryAccess
from repro.trace.stream import Trace
from repro.trace.synth import AddressSpace


class _Stop(Exception):
    """Raised inside compiled code when the execution budget is spent."""


#: Guarded arithmetic matching BINOP_EVALUATORS' division-by-zero rules.
def _fdiv(a: int, b: int) -> int:
    return a // b if b else 0


def _fmod(a: int, b: int) -> int:
    return a % b if b else 0


_BINOP_TEMPLATES = {
    "+": "({} + {})",
    "-": "({} - {})",
    "*": "({} * {})",
    "//": "_fdiv({}, {})",
    "%": "_fmod({}, {})",
    "&": "({} & {})",
    "|": "({} | {})",
    "^": "({} ^ {})",
    "<<": "({} << {})",
    ">>": "({} >> {})",
    "<": "int({} < {})",
    "<=": "int({} <= {})",
    ">": "int({} > {})",
    ">=": "int({} >= {})",
    "==": "int({} == {})",
    "!=": "int({} != {})",
    "min": "min({}, {})",
    "max": "max({}, {})",
}


class _CodeGenerator:
    """Lowers one kernel body to Python source lines."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.lines: list[str] = []
        self._temp = 0

    # -- helpers -------------------------------------------------------------

    def emit(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    def fresh(self, prefix: str) -> str:
        self._temp += 1
        return f"_{prefix}{self._temp}"

    def expr(self, node: Expr) -> str:
        if isinstance(node, Const):
            return repr(node.value)
        if isinstance(node, Var):
            return f"v_{node.name}"
        if isinstance(node, BinOp):
            return _BINOP_TEMPLATES[node.op].format(
                self.expr(node.lhs), self.expr(node.rhs)
            )
        raise WorkloadError(f"unknown expression node {type(node).__name__}")

    # -- statements ----------------------------------------------------------

    def body(self, statements: list[Statement], depth: int) -> None:
        for statement in statements:
            self.statement(statement, depth)

    def statement(self, node: Statement, depth: int) -> None:
        if isinstance(node, Load):
            self._memory_op(node, depth, is_store=False)
        elif isinstance(node, Store):
            self._memory_op(node, depth, is_store=True)
        elif isinstance(node, Compute):
            if node.count:
                self.emit(depth, f"ic += {node.count}")
        elif isinstance(node, Assign):
            self.emit(depth, f"v_{node.dst} = {self.expr(node.expr)}")
            self.emit(depth, "ic += 1")
        elif isinstance(node, If):
            self.emit(depth, "ic += 1")
            self.emit(depth, f"if {self.expr(node.cond)}:")
            if node.then_body:
                self.body(node.then_body, depth + 1)
            else:
                self.emit(depth + 1, "pass")
            if node.else_body:
                self.emit(depth, "else:")
                self.body(node.else_body, depth + 1)
        elif isinstance(node, For):
            self._for(node, depth)
        elif isinstance(node, While):
            self._while(node, depth)
        else:
            raise WorkloadError(
                f"unknown statement node {type(node).__name__}"
            )

    def _memory_op(self, node: Load | Store, depth: int, is_store: bool) -> None:
        index = self.fresh("i")
        name = node.array
        self.emit(depth, f"{index} = {self.expr(node.index)}")
        self.emit(depth, f"if not 0 <= {index} < len_{name}:")
        self.emit(
            depth + 1,
            f"raise WorkloadError(_oob_message({index}, {name!r}, len_{name}))",
        )
        flag = "True" if is_store else "False"
        self.emit(
            depth,
            f"events_append(MemoryAccess(ic, {node.pc}, "
            f"base_{name} + {index} * es_{name}, {flag}))",
        )
        self.emit(depth, "ic += 1")
        self.emit(depth, "mem += 1")
        if is_store:
            self.emit(
                depth, f"data_{name}[{index}] = {self.expr(node.value)}"
            )
        elif node.dst is not None:
            self.emit(depth, f"v_{node.dst} = int(data_{name}[{index}])")

    def _budget_check(self, depth: int) -> None:
        # The current icount travels with the exception so the truncated
        # trace reports exactly the instructions the interpreter would.
        self.emit(depth, "if mem >= max_mem or ic >= max_ic:")
        self.emit(depth + 1, "raise _Stop(ic)")

    def _for(self, node: For, depth: int) -> None:
        start = self.fresh("s")
        stop = self.fresh("e")
        self.emit(depth, f"{start} = {self.expr(node.start)}")
        self.emit(depth, f"{stop} = {self.expr(node.stop)}")
        self.emit(depth, "ic += 1")
        self.emit(
            depth,
            f"for v_{node.var} in range({start}, {stop}, {node.step}):",
        )
        inner = depth + 1
        self._budget_check(inner)
        self.emit(inner, "ic += 2")
        if node.block_id is not None:
            self.emit(inner, f"events_append(BlockBegin(ic, {node.block_id}))")
            self.body(node.body, inner)
            self.emit(inner, f"events_append(BlockEnd(ic, {node.block_id}))")
        else:
            self.body(node.body, inner)

    def _while(self, node: While, depth: int) -> None:
        counter = self.fresh("n")
        self.emit(depth, f"{counter} = 0")
        self.emit(depth, "while True:")
        inner = depth + 1
        self.emit(inner, "ic += 2")
        self.emit(inner, f"if not ({self.expr(node.cond)}):")
        self.emit(inner + 1, "break")
        self._budget_check(inner)
        self.emit(inner, f"{counter} += 1")
        self.emit(inner, f"if {counter} > {node.max_iterations}:")
        self.emit(
            inner + 1,
            f"raise WorkloadError(_runaway_message({node.max_iterations}))",
        )
        if node.block_id is not None:
            self.emit(inner, f"events_append(BlockBegin(ic, {node.block_id}))")
            self.body(node.body, inner)
            self.emit(inner, f"events_append(BlockEnd(ic, {node.block_id}))")
        else:
            self.body(node.body, inner)


class CompiledKernel:
    """A kernel lowered to an executable Python function."""

    def __init__(self, kernel: Kernel) -> None:
        number_kernel(kernel)
        self.kernel = kernel
        generator = _CodeGenerator(kernel)
        generator.body(kernel.body, 1)
        if not generator.lines:
            generator.emit(1, "pass")

        array_params = ", ".join(
            f"data_{decl.name}, base_{decl.name}, es_{decl.name}, "
            f"len_{decl.name}"
            for decl in kernel.arrays
        )
        header = (
            f"def _kernel_main(events_append, max_mem, max_ic, "
            f"{array_params}):\n"
            "    ic = 0\n"
            "    mem = 0\n"
        )
        footer = "\n    return ic\n"
        self.source = header + "\n".join(generator.lines) + footer

        namespace: dict[str, object] = {
            "MemoryAccess": MemoryAccess,
            "BlockBegin": BlockBegin,
            "BlockEnd": BlockEnd,
            "WorkloadError": WorkloadError,
            "_Stop": _Stop,
            "_fdiv": _fdiv,
            "_fmod": _fmod,
            "_oob_message": self._oob_message,
            "_runaway_message": self._runaway_message,
        }
        exec(compile(self.source, f"<compiled:{kernel.name}>", "exec"),
             namespace)
        self._function = namespace["_kernel_main"]

    def _oob_message(self, index: int, array: str, length: int) -> str:
        return (
            f"kernel '{self.kernel.name}': array '{array}' index {index} "
            f"out of range [0, {length})"
        )

    def _runaway_message(self, limit: int) -> str:
        return (
            f"kernel '{self.kernel.name}': While exceeded {limit} iterations"
        )

    def run(
        self,
        seed: int = 0,
        limits: ExecutionLimits | None = None,
    ) -> Trace:
        """Execute the compiled kernel; same contract as the interpreter."""
        limits = limits or ExecutionLimits()
        address_space = AddressSpace()
        rng = np.random.default_rng(seed)
        arguments: list[object] = []
        for decl in self.kernel.arrays:
            allocation = address_space.allocate(
                decl.name, decl.length, decl.element_size
            )
            if decl.init is not None:
                contents = np.asarray(decl.init(rng), dtype=np.int64)
                if contents.shape != (decl.length,):
                    raise WorkloadError(
                        f"array '{decl.name}': initializer returned shape "
                        f"{contents.shape}, expected ({decl.length},)"
                    )
            else:
                contents = np.zeros(decl.length, dtype=np.int64)
            arguments.extend(
                (contents, allocation.base, decl.element_size, decl.length)
            )

        events: list = []
        max_mem = (
            limits.max_memory_accesses
            if limits.max_memory_accesses is not None
            else float("inf")
        )
        max_ic = (
            limits.max_instructions
            if limits.max_instructions is not None
            else float("inf")
        )
        try:
            instructions = self._function(
                events.append, max_mem, max_ic, *arguments
            )
        except _Stop as stop:
            # A _Stop fires only at a loop-iteration boundary, before any
            # BLOCK_BEGIN, so the event stream is already well-formed.
            instructions = stop.args[0]
        return Trace(self.kernel.name, events, instructions)


def compile_kernel(kernel: Kernel) -> CompiledKernel:
    """Lower ``kernel`` to Python and return the executable wrapper."""
    return CompiledKernel(kernel)


def run_kernel_compiled(
    kernel: Kernel,
    seed: int = 0,
    limits: ExecutionLimits | None = None,
) -> Trace:
    """Convenience wrapper mirroring :func:`repro.ir.interp.run_kernel`."""
    return compile_kernel(kernel).run(seed=seed, limits=limits)
