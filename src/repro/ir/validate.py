"""Structural validation and static numbering of kernels.

``number_kernel`` plays the role of instruction selection: it walks the
kernel once, assigns a unique ``pc`` to every static Load/Store (the
identifier PC-based prefetchers key on), and returns a summary of the
static shape of the kernel (loops, memory operations per loop body).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.common.errors import ValidationError
from repro.ir.nodes import (
    Assign,
    BinOp,
    Compute,
    Const,
    Expr,
    For,
    If,
    Kernel,
    Load,
    Statement,
    Store,
    Var,
    While,
)

#: Synthetic code segment base so kernel "PCs" look like text addresses.
PC_BASE = 0x400000
#: Spacing between consecutive static memory instructions.
PC_STRIDE = 0x10


@dataclass
class KernelSummary:
    """Static shape of a kernel produced by :func:`number_kernel`.

    Attributes:
        static_memory_ops: number of static Load/Store nodes.
        loops: every loop node in the kernel, outermost first.
        innermost_loops: loops containing no nested loop.
        array_names: arrays referenced by at least one memory op.
    """

    static_memory_ops: int = 0
    loops: list[For | While] = field(default_factory=list)
    innermost_loops: list[For | While] = field(default_factory=list)
    array_names: set[str] = field(default_factory=set)


def iter_statements(body: Sequence[Statement]) -> Iterator[Statement]:
    """Depth-first iteration over every statement in a body."""
    for statement in body:
        yield statement
        if isinstance(statement, (For, While)):
            yield from iter_statements(statement.body)
        elif isinstance(statement, If):
            yield from iter_statements(statement.then_body)
            yield from iter_statements(statement.else_body)


def loop_contains_loop(loop: For | While) -> bool:
    """True when ``loop`` has another loop anywhere in its body."""
    return any(
        isinstance(statement, (For, While))
        for statement in iter_statements(loop.body)
    )


def count_memory_ops(body: Sequence[Statement]) -> int:
    """Number of static Load/Store nodes in a body (all paths counted)."""
    return sum(
        1 for statement in iter_statements(body) if isinstance(statement, (Load, Store))
    )


def validate_kernel(kernel: Kernel) -> None:
    """Check that the kernel only references declared arrays and that
    every expression is well-formed.  Raises :class:`ValidationError`.
    """
    declared = {decl.name for decl in kernel.arrays}
    for statement in iter_statements(kernel.body):
        if isinstance(statement, (Load, Store)):
            if statement.array not in declared:
                raise ValidationError(
                    f"kernel '{kernel.name}': memory op references undeclared "
                    f"array '{statement.array}'"
                )
            _validate_expr(statement.index, kernel.name)
            if isinstance(statement, Store):
                _validate_expr(statement.value, kernel.name)
        elif isinstance(statement, Assign):
            _validate_expr(statement.expr, kernel.name)
        elif isinstance(statement, If):
            _validate_expr(statement.cond, kernel.name)
        elif isinstance(statement, For):
            _validate_expr(statement.start, kernel.name)
            _validate_expr(statement.stop, kernel.name)
        elif isinstance(statement, While):
            _validate_expr(statement.cond, kernel.name)


def _validate_expr(expr: Expr, kernel_name: str) -> None:
    if isinstance(expr, (Const, Var)):
        return
    if isinstance(expr, BinOp):
        _validate_expr(expr.lhs, kernel_name)
        _validate_expr(expr.rhs, kernel_name)
        return
    raise ValidationError(
        f"kernel '{kernel_name}': unknown expression node {type(expr).__name__}"
    )


def number_kernel(kernel: Kernel) -> KernelSummary:
    """Validate, assign PCs to static memory ops, and summarize.

    Idempotent: renumbering a kernel yields the same PCs.
    """
    validate_kernel(kernel)
    summary = KernelSummary()
    next_pc = PC_BASE
    for statement in iter_statements(kernel.body):
        if isinstance(statement, (Load, Store)):
            statement.pc = next_pc
            next_pc += PC_STRIDE
            summary.static_memory_ops += 1
            summary.array_names.add(statement.array)
        elif isinstance(statement, (For, While)):
            summary.loops.append(statement)
    summary.innermost_loops = [
        loop for loop in summary.loops if not loop_contains_loop(loop)
    ]
    return summary


def kernel_summary(kernel: Kernel) -> KernelSummary:
    """Alias for :func:`number_kernel`, named for read-only callers."""
    return number_kernel(kernel)
