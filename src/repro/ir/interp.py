"""Reference interpreter: executes a kernel and emits its trace.

The interpreter models the commit stage of the core: every executed
Load/Store appends a :class:`~repro.trace.events.MemoryAccess` to the
trace, every iteration of an annotated loop is bracketed by
``BLOCK_BEGIN``/``BLOCK_END`` markers, and ``icount`` tracks committed
instructions so the timing model can convert progress to cycles.

Instruction accounting (used for the MPKI denominator and Figure 1):

=============  =======================================================
statement      committed instructions
=============  =======================================================
Assign         1
Load / Store   1 (plus the address arithmetic folded into Compute ops)
Compute(n)     n
If             1 (compare + branch) plus the taken body
For            1 setup, then 2 per iteration (induction update + branch)
While          2 per iteration (condition + branch)
=============  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.common.errors import WorkloadError
from repro.ir.nodes import (
    Assign,
    BinOp,
    BINOP_EVALUATORS,
    Compute,
    Const,
    Expr,
    For,
    If,
    Kernel,
    Load,
    Statement,
    Store,
    Var,
    While,
)
from repro.ir.validate import number_kernel
from repro.trace.events import BlockBegin, BlockEnd, MemoryAccess, TraceEvent
from repro.trace.stream import Trace
from repro.trace.synth import AddressSpace


@dataclass(frozen=True)
class ExecutionLimits:
    """Budget caps that stop a kernel early with a well-formed trace.

    Budgets are checked at loop iteration boundaries, so block markers
    always stay balanced even when a kernel is truncated.

    Attributes:
        max_memory_accesses: stop once this many loads+stores committed.
        max_instructions: stop once this many instructions committed.
    """

    max_memory_accesses: int | None = None
    max_instructions: int | None = None

    def exhausted(self, memory_accesses: int, instructions: int) -> bool:
        """True when either budget has been spent."""
        if self.max_memory_accesses is not None:
            if memory_accesses >= self.max_memory_accesses:
                return True
        if self.max_instructions is not None:
            if instructions >= self.max_instructions:
                return True
        return False


class _BudgetExhausted(Exception):
    """Internal control flow: unwind all loops when the budget is spent."""


class Interpreter:
    """Executes one kernel over concrete data.

    Args:
        kernel: the kernel to run.  Static memory ops are (re)numbered.
        seed: seed for array initializers; fixing it makes data-dependent
            kernels (histo, mcf) fully reproducible.
        limits: optional execution budget.
    """

    def __init__(
        self,
        kernel: Kernel,
        seed: int = 0,
        limits: ExecutionLimits | None = None,
    ) -> None:
        number_kernel(kernel)
        self.kernel = kernel
        self.limits = limits or ExecutionLimits()
        self._events: list[TraceEvent] = []
        self._icount = 0
        self._memory_accesses = 0
        self._env: dict[str, int] = {}

        self.address_space = AddressSpace()
        self._data: dict[str, np.ndarray] = {}
        self._base: dict[str, int] = {}
        self._elem_size: dict[str, int] = {}
        self._length: dict[str, int] = {}
        rng = np.random.default_rng(seed)
        for decl in kernel.arrays:
            allocation = self.address_space.allocate(
                decl.name, decl.length, decl.element_size
            )
            if decl.init is not None:
                contents = np.asarray(decl.init(rng), dtype=np.int64)
                if contents.shape != (decl.length,):
                    raise WorkloadError(
                        f"array '{decl.name}': initializer returned shape "
                        f"{contents.shape}, expected ({decl.length},)"
                    )
            else:
                contents = np.zeros(decl.length, dtype=np.int64)
            self._data[decl.name] = contents
            self._base[decl.name] = allocation.base
            self._elem_size[decl.name] = decl.element_size
            self._length[decl.name] = decl.length

    # -- public API --------------------------------------------------------

    def run(self) -> Trace:
        """Execute the kernel body and return the resulting trace."""
        try:
            self._exec_body(self.kernel.body)
        except _BudgetExhausted:
            pass
        trace = Trace(self.kernel.name, self._events, self._icount)
        return trace

    # -- statement execution ------------------------------------------------

    def _exec_body(self, body: Sequence[Statement]) -> None:
        for statement in body:
            self._exec(statement)

    def _exec(self, statement: Statement) -> None:
        if isinstance(statement, Load):
            self._exec_load(statement)
        elif isinstance(statement, Store):
            self._exec_store(statement)
        elif isinstance(statement, Compute):
            self._icount += statement.count
        elif isinstance(statement, Assign):
            self._env[statement.dst] = self._eval(statement.expr)
            self._icount += 1
        elif isinstance(statement, If):
            self._icount += 1
            if self._eval(statement.cond):
                self._exec_body(statement.then_body)
            else:
                self._exec_body(statement.else_body)
        elif isinstance(statement, For):
            self._exec_for(statement)
        elif isinstance(statement, While):
            self._exec_while(statement)
        else:
            raise WorkloadError(
                f"unknown statement node {type(statement).__name__}"
            )

    def _exec_load(self, node: Load) -> None:
        index = self._eval(node.index)
        self._check_bounds(node.array, index)
        address = self._base[node.array] + index * self._elem_size[node.array]
        self._events.append(MemoryAccess(self._icount, node.pc, address, False))
        self._icount += 1
        self._memory_accesses += 1
        if node.dst is not None:
            self._env[node.dst] = int(self._data[node.array][index])

    def _exec_store(self, node: Store) -> None:
        index = self._eval(node.index)
        self._check_bounds(node.array, index)
        address = self._base[node.array] + index * self._elem_size[node.array]
        self._events.append(MemoryAccess(self._icount, node.pc, address, True))
        self._icount += 1
        self._memory_accesses += 1
        self._data[node.array][index] = self._eval(node.value)

    def _exec_for(self, node: For) -> None:
        start = self._eval(node.start)
        stop = self._eval(node.stop)
        self._icount += 1  # induction variable setup
        annotated = node.block_id is not None
        for value in range(start, stop, node.step):
            self._check_budget()
            self._env[node.var] = value
            self._icount += 2  # induction update + back-edge branch
            if annotated:
                self._events.append(BlockBegin(self._icount, node.block_id))
                self._exec_body(node.body)
                self._events.append(BlockEnd(self._icount, node.block_id))
            else:
                self._exec_body(node.body)

    def _exec_while(self, node: While) -> None:
        annotated = node.block_id is not None
        iterations = 0
        while True:
            self._icount += 2  # condition evaluation + branch
            if not self._eval(node.cond):
                break
            self._check_budget()
            iterations += 1
            if iterations > node.max_iterations:
                raise WorkloadError(
                    f"kernel '{self.kernel.name}': While exceeded "
                    f"{node.max_iterations} iterations"
                )
            if annotated:
                self._events.append(BlockBegin(self._icount, node.block_id))
                self._exec_body(node.body)
                self._events.append(BlockEnd(self._icount, node.block_id))
            else:
                self._exec_body(node.body)

    def _check_budget(self) -> None:
        if self.limits.exhausted(self._memory_accesses, self._icount):
            raise _BudgetExhausted()

    def _check_bounds(self, array: str, index: int) -> None:
        if not 0 <= index < self._length[array]:
            raise WorkloadError(
                f"kernel '{self.kernel.name}': array '{array}' index {index} "
                f"out of range [0, {self._length[array]})"
            )

    # -- expression evaluation ----------------------------------------------

    def _eval(self, expr: Expr) -> int:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Var):
            try:
                return self._env[expr.name]
            except KeyError:
                raise WorkloadError(
                    f"kernel '{self.kernel.name}': variable '{expr.name}' "
                    "read before assignment"
                ) from None
        if isinstance(expr, BinOp):
            return BINOP_EVALUATORS[expr.op](
                self._eval(expr.lhs), self._eval(expr.rhs)
            )
        raise WorkloadError(f"unknown expression node {type(expr).__name__}")

    # -- introspection helpers (used by tests and examples) ------------------

    def array_values(self, name: str) -> np.ndarray:
        """Current contents of a kernel array (post-run inspection)."""
        try:
            return self._data[name]
        except KeyError:
            raise WorkloadError(f"unknown array '{name}'") from None


def run_kernel(
    kernel: Kernel,
    seed: int = 0,
    limits: ExecutionLimits | None = None,
) -> Trace:
    """Convenience wrapper: interpret ``kernel`` and return its trace."""
    return Interpreter(kernel, seed=seed, limits=limits).run()
