"""Tiny helpers that keep kernel definitions readable.

Kernels are ordinary Python modules building IR trees; these shorthands
(``v`` for variables, ``c`` for constants) keep index arithmetic close to
the C source of the original benchmarks, e.g. the Parboil stencil index
``IDX(nx, ny, x, y, z) = x + nx*(y + ny*z)`` becomes::

    idx = v("i") + c(nx) * (v("j") + c(ny) * v("k"))
"""

from __future__ import annotations

from repro.ir.nodes import BinOp, Const, Expr, Var


def v(name: str) -> Var:
    """Reference the scalar variable ``name``."""
    return Var(name)


def c(value: int) -> Const:
    """An integer constant."""
    return Const(value)


def minimum(lhs: Expr | int, rhs: Expr | int) -> BinOp:
    """Element minimum of two expressions."""
    return BinOp("min", _as_expr(lhs), _as_expr(rhs))


def maximum(lhs: Expr | int, rhs: Expr | int) -> BinOp:
    """Element maximum of two expressions."""
    return BinOp("max", _as_expr(lhs), _as_expr(rhs))


def _as_expr(value: Expr | int) -> Expr:
    return value if isinstance(value, Expr) else Const(value)
