"""Loop-structured kernel IR.

The IR is the substitute for the paper's C benchmarks + LLVM toolchain:
workloads are written as explicit loop nests over declared arrays, a
compiler pass (:mod:`repro.passes.annotate`) marks tight innermost loops
with static block ids, and the interpreter (:mod:`repro.ir.interp`)
executes the kernel over real data, emitting the commit-order trace of
memory accesses and ``BLOCK_BEGIN``/``BLOCK_END`` markers.

Structure mirrors a classic compiler IR:

* expressions (:class:`Const`, :class:`Var`, :class:`BinOp`) evaluate to
  integers and support Python operators for readable kernel code;
* statements (:class:`Assign`, :class:`Load`, :class:`Store`,
  :class:`Compute`, :class:`If`, :class:`For`, :class:`While`) form the
  loop-structured body;
* :class:`Kernel` bundles array declarations with a statement body.
"""

from repro.ir.nodes import (
    ArrayDecl,
    Assign,
    BinOp,
    Compute,
    Const,
    Expr,
    For,
    If,
    Kernel,
    Load,
    Statement,
    Store,
    Var,
    While,
)
from repro.ir.builder import c, v
from repro.ir.validate import kernel_summary, number_kernel, validate_kernel
from repro.ir.interp import ExecutionLimits, Interpreter, run_kernel
from repro.ir.compile import CompiledKernel, compile_kernel, run_kernel_compiled

__all__ = [
    "Expr",
    "Const",
    "Var",
    "BinOp",
    "Statement",
    "Assign",
    "Load",
    "Store",
    "Compute",
    "If",
    "For",
    "While",
    "ArrayDecl",
    "Kernel",
    "c",
    "v",
    "validate_kernel",
    "number_kernel",
    "kernel_summary",
    "Interpreter",
    "ExecutionLimits",
    "run_kernel",
    "CompiledKernel",
    "compile_kernel",
    "run_kernel_compiled",
]
