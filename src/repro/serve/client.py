"""Blocking HTTP client for the simulation service.

Built on stdlib ``http.client`` — one connection per call, matching the
server's ``Connection: close`` discipline.  The CLI subcommands
(``repro submit``, ``repro loadgen``) and the test suite drive the
server exclusively through this module, so it doubles as the reference
consumer of the wire protocol.

Error mapping mirrors the server: HTTP 400 raises
:class:`~repro.serve.protocol.ProtocolError`, 404 raises
:class:`JobNotFound`, 429 raises :class:`ServerBusy` (with the parsed
``Retry-After``), 503 raises :class:`ServerDraining`, and transport
failures raise :class:`ConnectionFailed`.

Failover: constructed with a :class:`RetryPolicy`, :meth:`ServeClient
.run` retries connection errors, 429, and 503 with exponential backoff
plus full jitter (honouring the server's ``Retry-After``), and treats a
404 mid-poll as a shard failover — the restarted shard re-admitted the
journaled work under fresh job ids, so the client *resubmits* the
original request, which is idempotent by content-addressed key (it
attaches to the recovered leader or replays from the shared result
cache).  A hard ``max_deadline`` bounds the whole exchange so campaign
waves fail loudly (:class:`DeadlineExceeded`) instead of hanging.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.common.errors import ReproError
from repro.serve.protocol import (
    JobStatus,
    JobView,
    ProtocolError,
    SimulateRequest,
)


class ServeClientError(ReproError):
    """Base class for client-side failures against the serve API."""


class ConnectionFailed(ServeClientError):
    """The server could not be reached at the transport level."""


class ServerBusy(ServeClientError):
    """HTTP 429: the admission queue is full."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServerDraining(ServeClientError):
    """HTTP 503: the server is shutting down (or a shard is down)."""

    def __init__(self, message: str,
                 retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class JobNotFound(ServeClientError):
    """HTTP 404: no such job."""


class DeadlineExceeded(ServeClientError):
    """The retry policy's ``max_deadline`` elapsed before success."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and full jitter.

    ``delay(attempt)`` draws uniformly from ``[0, min(max_delay,
    base_delay * 2**attempt)]`` — *full jitter*, so a fleet of clients
    retrying after the same shard death does not stampede the restarted
    shard in lockstep.  A server-supplied ``Retry-After`` overrides the
    jittered draw (the server knows its own backlog better than we do),
    with only a small jitter added on top to de-synchronize.

    ``max_deadline`` is a hard wall-clock bound across *all* attempts
    of one logical operation; crossing it raises
    :class:`DeadlineExceeded` so a campaign wave pointed at a dead
    cluster fails loudly instead of hanging forever.
    """

    max_attempts: int = 8
    base_delay: float = 0.2
    max_delay: float = 10.0
    max_deadline: float = 300.0

    def delay(self, attempt: int, retry_after: float | None = None) -> float:
        """Seconds to sleep before retry number ``attempt`` (1-based)."""
        cap = min(self.max_delay, self.base_delay * (2 ** max(0, attempt - 1)))
        if retry_after is not None and retry_after > 0:
            return retry_after + random.uniform(0.0, self.base_delay)
        return random.uniform(0.0, cap)


#: Exceptions :meth:`ServeClient.run` retries under a policy.  404 is
#: included because job ids do not survive shard failover — resubmitting
#: the content-addressed request is the recovery, not an error.
RETRYABLE = (ConnectionFailed, ServerBusy, ServerDraining, JobNotFound)


class ServeClient:
    """Typed access to one ``repro serve`` (or ``repro cluster``) API."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8321,
                 timeout: float = 60.0,
                 retry: RetryPolicy | None = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: None preserves the historical raise-on-first-failure
        #: behavior; a policy makes :meth:`run` failover-tolerant.
        self.retry = retry
        #: Retries performed by :meth:`run` over this client's lifetime
        #: (the load generator reads this for its availability metric).
        self.retries = 0

    # -- plumbing -----------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Mapping[str, Any] | None = None
                 ) -> tuple[int, Mapping[str, str], bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            return (response.status,
                    {name.lower(): value
                     for name, value in response.getheaders()},
                    raw)
        except OSError as error:
            raise ConnectionFailed(
                f"cannot reach repro serve at {self.host}:{self.port}: "
                f"{error}"
            ) from None
        finally:
            connection.close()

    @staticmethod
    def _decode(raw: bytes) -> Any:
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServeClientError(
                f"server sent an unparseable body: {error}") from None

    def _raise_for_status(self, status: int, headers: Mapping[str, str],
                          raw: bytes) -> None:
        if 200 <= status < 300:
            return
        document = self._decode(raw)
        error = (document.get("error", {})
                 if isinstance(document, dict) else {})
        message = error.get("message", f"HTTP {status}")
        if status == 429:
            retry_after = float(
                error.get("retry_after_seconds",
                          headers.get("retry-after", 1)))
            raise ServerBusy(message, retry_after)
        if status == 503:
            retry_after = error.get("retry_after_seconds")
            if retry_after is None:
                retry_after = headers.get("retry-after")
            raise ServerDraining(
                message,
                float(retry_after) if retry_after is not None else None)
        if status == 404:
            raise JobNotFound(message)
        if status == 400:
            raise ProtocolError(message)
        raise ServeClientError(f"HTTP {status}: {message}")

    def _get_json(self, path: str) -> Any:
        status, headers, raw = self._request("GET", path)
        self._raise_for_status(status, headers, raw)
        return self._decode(raw)

    # -- endpoints ----------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """The ``/healthz`` body (includes the server's version)."""
        return self._get_json("/healthz")

    def ready(self) -> bool:
        """True while the server admits new work."""
        try:
            status, _, _ = self._request("GET", "/readyz")
        except ServeClientError:
            return False
        return status == 200

    def wait_until_ready(self, timeout: float = 30.0,
                         poll: float = 0.1) -> None:
        """Block until ``/readyz`` answers 200 (CI/loadgen startup)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.ready():
                return
            time.sleep(poll)
        raise ServeClientError(
            f"server at {self.host}:{self.port} not ready "
            f"after {timeout:.0f}s")

    def submit(self, request: SimulateRequest) -> JobView:
        """``POST /v1/simulate``; returns the (possibly terminal) job."""
        status, headers, raw = self._request(
            "POST", "/v1/simulate", body=request.to_dict())
        self._raise_for_status(status, headers, raw)
        return JobView.from_dict(self._decode(raw))

    def job(self, job_id: str) -> JobView:
        """``GET /v1/jobs/<id>``."""
        return JobView.from_dict(self._get_json(f"/v1/jobs/{job_id}"))

    def wait(self, job_id: str, timeout: float = 600.0,
             poll: float = 0.05) -> JobView:
        """Poll one job until it is terminal."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view.status.terminal:
                return view
            if time.monotonic() >= deadline:
                raise ServeClientError(
                    f"job {job_id} still {view.status.value} "
                    f"after {timeout:.0f}s")
            time.sleep(poll)

    def run(self, request: SimulateRequest,
            timeout: float = 600.0, poll: float = 0.05) -> JobView:
        """Submit and wait: the one-call equivalent of ``repro run``.

        Without a :class:`RetryPolicy` this raises on the first failure
        (historical behavior, relied on by backpressure tests).  With
        one, connection errors, 429, 503, and mid-poll 404 (shard
        failover: the restarted shard knows the work but not the old
        job id) are retried with backoff+jitter until ``max_attempts``
        or the policy deadline — whichever comes first.
        """
        if self.retry is None:
            view = self.submit(request)
            if view.status.terminal:
                return view
            return self.wait(view.job_id, timeout=timeout)

        policy = self.retry
        deadline = time.monotonic() + min(timeout, policy.max_deadline)
        failures = 0
        while True:
            try:
                view = self.submit(request)
                while not view.status.terminal:
                    if time.monotonic() >= deadline:
                        raise DeadlineExceeded(
                            f"job {view.job_id} still "
                            f"{view.status.value} at the retry deadline")
                    time.sleep(poll)
                    view = self.job(view.job_id)
                return view
            except RETRYABLE as error:
                failures += 1
                self._pause(policy, failures, deadline, error)

    def _pause(self, policy: RetryPolicy, failures: int, deadline: float,
               error: ServeClientError) -> None:
        """Sleep before the next attempt, or give up loudly."""
        if failures >= policy.max_attempts:
            raise ServeClientError(
                f"gave up after {failures} attempt(s): {error}"
            ) from error
        delay = policy.delay(failures, getattr(error, "retry_after", None))
        if time.monotonic() + delay >= deadline:
            raise DeadlineExceeded(
                f"retry deadline ({policy.max_deadline:.0f}s) would be "
                f"exceeded waiting out: {error}"
            ) from error
        self.retries += 1
        time.sleep(delay)

    def metrics_text(self) -> str:
        """The raw Prometheus exposition of ``/metrics``."""
        status, headers, raw = self._request("GET", "/metrics")
        self._raise_for_status(status, headers, raw)
        return raw.decode("utf-8")

    def stream_events(self, job_id: str,
                      timeout: float = 600.0) -> Iterator[dict[str, Any]]:
        """``GET /v1/jobs/<id>/events``: yield parsed SSE frames.

        Terminates after the ``terminal`` event (or raises on timeout).
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout)
        try:
            connection.request("GET", f"/v1/jobs/{job_id}/events")
            response = connection.getresponse()
            if response.status != 200:
                raw = response.read()
                self._raise_for_status(
                    response.status,
                    {name.lower(): value
                     for name, value in response.getheaders()},
                    raw)
            name = None
            while True:
                line = response.readline()
                if not line:
                    return
                text = line.decode("utf-8").rstrip("\n")
                if text.startswith("event: "):
                    name = text[len("event: "):]
                elif text.startswith("data: "):
                    payload = json.loads(text[len("data: "):])
                    payload["_event"] = name or "message"
                    yield payload
                    if name == "terminal":
                        return
        finally:
            connection.close()


def check_status(status: JobStatus | str) -> JobStatus:
    """Coerce a status string into :class:`JobStatus` (client helpers)."""
    if isinstance(status, JobStatus):
        return status
    return JobStatus(status)
