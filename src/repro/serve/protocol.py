"""The versioned wire schema of the simulation service.

Every request and response body is JSON with an explicit integer
``version`` field; the server rejects versions it does not speak with a
:class:`ProtocolError` (HTTP 400) instead of guessing.  Parsing is
strict — unknown top-level keys, wrong types, and out-of-range values
are all rejected — so a malformed client fails loudly at admission, not
deep inside a worker.

Request layout (``POST /v1/simulate``)::

    {"version": 1,
     "workload": "stencil-default",
     "prefetcher": "cbws+sms",
     "scale": 1.0,
     "budget_fraction": 0.05,
     "seed": 0,
     "config": {"l1_kb": 4, "l2_kb": 128,
                "core": {"rob_entries": 64},
                "prefetch": {"issue_interval": 4}}}

``config`` is a sparse override of the reduced Table II machine: only
the listed fields change, everything else keeps its default, and the
fully resolved :class:`~repro.sim.config.SimConfig` is what enters the
content-addressed :func:`~repro.exec.keys.sim_key` — so two requests
that resolve to the same machine deduplicate even if they spelled their
overrides differently.

Response layout (:class:`JobView`) mirrors a broker job: identity,
status, dedup/cache provenance, and (when terminal) the serialized
:class:`~repro.sim.results.SimResult` or an error string.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from enum import Enum
from typing import Any, Mapping

from repro.common.errors import ReproError
from repro.sim.config import (
    CoreConfig,
    PrefetchPathConfig,
    REDUCED_CONFIG,
    SimConfig,
)

#: Version of the request/response wire schema.  Bump on any field
#: change; the server answers exactly one version.
PROTOCOL_VERSION = 1


class ProtocolError(ReproError):
    """A request or response violates the wire schema."""


class JobStatus(Enum):
    """Lifecycle of one submitted simulation job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        """Whether the job can no longer change state."""
        return self in (JobStatus.DONE, JobStatus.FAILED)


_CORE_FIELDS = {field.name for field in dataclasses.fields(CoreConfig)}
_PREFETCH_FIELDS = {
    field.name for field in dataclasses.fields(PrefetchPathConfig)
}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def _check_mapping(value: object, what: str) -> Mapping[str, Any]:
    _require(isinstance(value, Mapping), f"{what} must be a JSON object")
    return value  # type: ignore[return-value]


def _check_str(payload: Mapping[str, Any], key: str) -> str:
    value = payload.get(key)
    _require(isinstance(value, str) and bool(value.strip()),
             f"field {key!r} must be a non-empty string")
    return value


def _check_int(value: object, what: str) -> int:
    _require(isinstance(value, int) and not isinstance(value, bool),
             f"{what} must be an integer")
    return value  # type: ignore[return-value]


def _check_positive_number(value: object, what: str) -> float:
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{what} must be a number",
    )
    number = float(value)  # type: ignore[arg-type]
    _require(number > 0 and number == number and number != float("inf"),
             f"{what} must be positive and finite")
    return number


def _check_version(payload: Mapping[str, Any], what: str) -> int:
    _require("version" in payload, f"{what} is missing its 'version' field")
    version = _check_int(payload["version"], f"{what} version")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported {what} version {version}; this server speaks "
            f"version {PROTOCOL_VERSION}"
        )
    return version


def _check_overrides(value: object, what: str,
                     allowed: set[str]) -> tuple[tuple[str, int], ...]:
    mapping = _check_mapping(value, what)
    pairs: list[tuple[str, int]] = []
    for key in sorted(mapping):
        _require(key in allowed,
                 f"{what} has no overridable field {key!r}; "
                 f"known: {', '.join(sorted(allowed))}")
        pairs.append((key, _check_int(mapping[key], f"{what}.{key}")))
    return tuple(pairs)


@dataclass(frozen=True)
class SimulateRequest:
    """One validated ``POST /v1/simulate`` body.

    Config overrides are stored as sorted ``(field, value)`` tuples so
    the dataclass stays hashable and order-insensitive: two requests
    spelling the same overrides in different orders are equal.
    """

    workload: str
    prefetcher: str
    version: int = PROTOCOL_VERSION
    scale: float = 1.0
    budget_fraction: float = 1.0
    seed: int = 0
    l1_kb: int | None = None
    l2_kb: int | None = None
    core: tuple[tuple[str, int], ...] = ()
    prefetch: tuple[tuple[str, int], ...] = ()

    _KEYS = frozenset({
        "version", "workload", "prefetcher", "scale", "budget_fraction",
        "seed", "config",
    })
    _CONFIG_KEYS = frozenset({"l1_kb", "l2_kb", "core", "prefetch"})

    @classmethod
    def from_dict(cls, payload: object) -> "SimulateRequest":
        """Parse and validate one request body (raises ProtocolError)."""
        body = _check_mapping(payload, "simulate request")
        unknown = set(body) - cls._KEYS
        _require(not unknown,
                 f"unknown request field(s): {', '.join(sorted(unknown))}")
        version = _check_version(body, "request")
        workload = _check_str(body, "workload")
        prefetcher = _check_str(body, "prefetcher")
        scale = _check_positive_number(body.get("scale", 1.0), "scale")
        budget_fraction = _check_positive_number(
            body.get("budget_fraction", 1.0), "budget_fraction")
        _require(budget_fraction <= 1.0, "budget_fraction must be <= 1.0")
        seed = _check_int(body.get("seed", 0), "seed")

        l1_kb = l2_kb = None
        core: tuple[tuple[str, int], ...] = ()
        prefetch: tuple[tuple[str, int], ...] = ()
        if "config" in body:
            config = _check_mapping(body["config"], "config")
            unknown = set(config) - cls._CONFIG_KEYS
            _require(
                not unknown,
                f"unknown config field(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(cls._CONFIG_KEYS))}",
            )
            if "l1_kb" in config:
                l1_kb = _check_int(config["l1_kb"], "config.l1_kb")
                _require(l1_kb > 0, "config.l1_kb must be positive")
            if "l2_kb" in config:
                l2_kb = _check_int(config["l2_kb"], "config.l2_kb")
                _require(l2_kb > 0, "config.l2_kb must be positive")
            if "core" in config:
                core = _check_overrides(config["core"], "config.core",
                                        _CORE_FIELDS)
            if "prefetch" in config:
                prefetch = _check_overrides(
                    config["prefetch"], "config.prefetch", _PREFETCH_FIELDS)

        return cls(
            workload=workload,
            prefetcher=prefetcher,
            version=version,
            scale=scale,
            budget_fraction=budget_fraction,
            seed=seed,
            l1_kb=l1_kb,
            l2_kb=l2_kb,
            core=core,
            prefetch=prefetch,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready body; ``from_dict`` round-trips it exactly."""
        document: dict[str, Any] = {
            "version": self.version,
            "workload": self.workload,
            "prefetcher": self.prefetcher,
            "scale": self.scale,
            "budget_fraction": self.budget_fraction,
            "seed": self.seed,
        }
        config: dict[str, Any] = {}
        if self.l1_kb is not None:
            config["l1_kb"] = self.l1_kb
        if self.l2_kb is not None:
            config["l2_kb"] = self.l2_kb
        if self.core:
            config["core"] = dict(self.core)
        if self.prefetch:
            config["prefetch"] = dict(self.prefetch)
        if config:
            document["config"] = config
        return document

    def resolve_config(self, base: SimConfig = REDUCED_CONFIG) -> SimConfig:
        """The fully resolved machine this request simulates.

        Field-level validation (positive latencies, monotone hierarchy,
        ...) happens in the config dataclasses' own ``__post_init__``;
        anything they raise is a :class:`~repro.common.errors.ConfigError`
        the server maps to HTTP 400.
        """
        core = (dataclasses.replace(base.core, **dict(self.core))
                if self.core else base.core)
        prefetch = (
            dataclasses.replace(base.prefetch, **dict(self.prefetch))
            if self.prefetch else base.prefetch)
        hierarchy = base.hierarchy
        if self.l1_kb is not None:
            hierarchy = dataclasses.replace(
                hierarchy,
                l1=dataclasses.replace(hierarchy.l1,
                                       size_bytes=self.l1_kb * 1024),
            )
        if self.l2_kb is not None:
            hierarchy = dataclasses.replace(
                hierarchy,
                l2=dataclasses.replace(hierarchy.l2,
                                       size_bytes=self.l2_kb * 1024),
            )
        return SimConfig(hierarchy=hierarchy, core=core, prefetch=prefetch)

    def sim_key(self, base: SimConfig = REDUCED_CONFIG) -> str:
        """Content-addressed identity of this request's result."""
        from repro.exec.keys import sim_key

        return sim_key(
            self.workload,
            self.prefetcher,
            self.scale,
            self.budget_fraction,
            self.seed,
            self.resolve_config(base),
        )


@dataclass(frozen=True)
class JobView:
    """One job's externally visible state (submit/poll response body)."""

    job_id: str
    status: JobStatus
    workload: str
    prefetcher: str
    key: str
    version: int = PROTOCOL_VERSION
    #: Whether *this* submission attached to an already in-flight job.
    deduplicated: bool = False
    #: True when the result replayed from the content-addressed cache
    #: without simulating; None while not yet known.
    cache_hit: bool | None = None
    wall_seconds: float | None = None
    result: Mapping[str, Any] | None = None
    error: str | None = None

    _KEYS = frozenset({
        "version", "job_id", "status", "workload", "prefetcher", "key",
        "deduplicated", "cache_hit", "wall_seconds", "result", "error",
    })

    @classmethod
    def from_dict(cls, payload: object) -> "JobView":
        """Parse and validate one job body (raises ProtocolError)."""
        body = _check_mapping(payload, "job view")
        unknown = set(body) - cls._KEYS
        _require(not unknown,
                 f"unknown job field(s): {', '.join(sorted(unknown))}")
        version = _check_version(body, "job view")
        status_raw = _check_str(body, "status")
        try:
            status = JobStatus(status_raw)
        except ValueError:
            raise ProtocolError(
                f"unknown job status {status_raw!r}; known: "
                + ", ".join(s.value for s in JobStatus)
            ) from None
        deduplicated = body.get("deduplicated", False)
        _require(isinstance(deduplicated, bool),
                 "field 'deduplicated' must be a boolean")
        cache_hit = body.get("cache_hit")
        _require(cache_hit is None or isinstance(cache_hit, bool),
                 "field 'cache_hit' must be a boolean or null")
        wall_seconds = body.get("wall_seconds")
        if wall_seconds is not None:
            _require(
                isinstance(wall_seconds, (int, float))
                and not isinstance(wall_seconds, bool)
                and wall_seconds >= 0,
                "field 'wall_seconds' must be a non-negative number",
            )
            wall_seconds = float(wall_seconds)
        result = body.get("result")
        if result is not None:
            result = dict(_check_mapping(result, "result"))
        error = body.get("error")
        _require(error is None or isinstance(error, str),
                 "field 'error' must be a string or null")
        return cls(
            job_id=_check_str(body, "job_id"),
            status=status,
            workload=_check_str(body, "workload"),
            prefetcher=_check_str(body, "prefetcher"),
            key=_check_str(body, "key"),
            version=version,
            deduplicated=deduplicated,
            cache_hit=cache_hit,
            wall_seconds=wall_seconds,
            result=result,
            error=error,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready body; ``from_dict`` round-trips it exactly."""
        return {
            "version": self.version,
            "job_id": self.job_id,
            "status": self.status.value,
            "workload": self.workload,
            "prefetcher": self.prefetcher,
            "key": self.key,
            "deduplicated": self.deduplicated,
            "cache_hit": self.cache_hit,
            "wall_seconds": self.wall_seconds,
            "result": dict(self.result) if self.result is not None else None,
            "error": self.error,
        }


def error_body(kind: str, message: str,
               retry_after: float | None = None) -> dict[str, Any]:
    """The uniform JSON error envelope every non-2xx response carries."""
    body: dict[str, Any] = {
        "version": PROTOCOL_VERSION,
        "error": {"type": kind, "message": message},
    }
    if retry_after is not None:
        body["error"]["retry_after_seconds"] = retry_after
    return body


def dumps(document: Mapping[str, Any]) -> bytes:
    """Canonical JSON encoding used for every HTTP body."""
    return (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")


def loads(raw: bytes) -> Any:
    """Decode one HTTP body, mapping JSON errors to ProtocolError."""
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"body is not valid JSON: {error}") from None
