"""Crash-recoverable job state for the serve broker.

A broker crash (OOM kill, supervisor SIGKILL of a hung shard, injected
``serve.job-finished:exit`` chaos) used to drop every accepted-but-
unfinished job on the floor: the client would poll a job id the
restarted process had never heard of, forever.  This module journals the
broker's admission decisions through the same CRC-framed, fsync'd,
torn-tail-tolerant machinery as grid runs
(:mod:`repro.exec.journal`), so a restarted broker *re-admits* the
journaled-but-unfinished jobs instead of forgetting them.

Record kinds::

    job-accepted      {job_id, key, request}   written at admission
    job-finished      {job_id, key, status}    written at the terminal
                                               transition, *after* the
                                               result landed in the
                                               shared result cache
    broker-restarted  {recovered}              appended by a recovering
                                               broker before it
                                               re-admits anything

Replay is a set difference: every ``job-accepted`` key without a
matching ``job-finished`` is unfinished work.  Because requests are
content-addressed (the journal stores the full
:class:`~repro.serve.protocol.SimulateRequest` body), re-admission is
idempotent — a re-admitted job whose result already reached the result
cache before the crash replays as a pure cache hit, bit-identical to
the uninterrupted run.

A clean drain finishes every accepted job, so the journal is deleted on
shutdown; only a crash leaves one behind for the next start to find.
"""

from __future__ import annotations

import logging
from pathlib import Path
from typing import Any

from repro.common.errors import JournalError, ReproError
from repro.exec.journal import RunJournal, read_records
from repro.serve.protocol import SimulateRequest

logger = logging.getLogger("repro.serve")

#: Version of the serve-journal record layout.
SERVE_JOURNAL_SCHEMA_VERSION = 1

#: Subdirectory of the cache dir holding one journal per shard.
SERVE_JOURNAL_DIRNAME = "serve"


def journal_path(cache_dir: str | Path, shard_name: str) -> Path:
    """Where the job journal of ``shard_name`` lives under a cache dir.

    Shards of one cluster share the cache dir (that is what makes any
    shard able to serve any cached cell), so the journal file is named
    by shard to keep their write-ahead state disjoint.
    """
    return Path(cache_dir) / SERVE_JOURNAL_DIRNAME / (
        f"{shard_name}.journal.jsonl")


class ServeJournal:
    """Write-ahead journal of one broker's job admissions."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._journal = RunJournal(self.path)

    def job_accepted(self, job_id: str, key: str,
                     request: SimulateRequest) -> None:
        """Record one admission *before* the job is queued."""
        self._journal.append(
            "job-accepted",
            schema=SERVE_JOURNAL_SCHEMA_VERSION,
            job_id=job_id,
            key=key,
            request=request.to_dict(),
        )

    def job_finished(self, job_id: str, key: str, status: str) -> None:
        """Record one terminal transition (done or failed)."""
        self._journal.append("job-finished", job_id=job_id, key=key,
                             status=status)

    def broker_restarted(self, recovered: int) -> None:
        """Mark a recovery pass (visible in post-mortem journal reads)."""
        self._journal.append("broker-restarted", recovered=recovered)

    def close(self) -> None:
        self._journal.close()

    def discard_clean(self) -> None:
        """Close and delete the journal after a clean drain.

        A drained broker has finished every accepted job, so the journal
        carries no recoverable state — leaving it around would only make
        the next start replay an empty set difference.
        """
        self.close()
        self.path.unlink(missing_ok=True)


def replay_unfinished(path: str | Path) -> list[SimulateRequest]:
    """The journaled-but-unfinished requests of one crashed broker.

    Tolerates a torn tail exactly like grid-run replay (records are
    trusted up to the first line failing its CRC or JSON check).  A
    missing journal means a clean previous shutdown: no recovery.
    Records whose embedded request no longer parses (schema drift
    across an upgrade) are skipped with a warning rather than wedging
    the restart.
    """
    path = Path(path)
    try:
        records, torn = read_records(path)
    except JournalError:
        return []
    if torn:
        logger.warning("serve journal %s has %d torn line(s); "
                       "trusting the intact prefix", path, torn)
    accepted: dict[str, dict[str, Any]] = {}
    finished: set[str] = set()
    for record in records:
        kind = record.get("kind")
        if kind == "job-accepted":
            key = record.get("key")
            body = record.get("request")
            if isinstance(key, str) and isinstance(body, dict):
                accepted[key] = body
        elif kind == "job-finished":
            key = record.get("key")
            if isinstance(key, str):
                finished.add(key)
    unfinished: list[SimulateRequest] = []
    for key, body in accepted.items():
        if key in finished:
            continue
        try:
            unfinished.append(SimulateRequest.from_dict(body))
        except ReproError as error:
            logger.warning("skipping unreplayable journaled job %s: %s",
                           key[:12], error)
    return unfinished
