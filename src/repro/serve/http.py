"""A stdlib-only asyncio HTTP/1.1 front end for the broker.

No web framework: requests are parsed off an ``asyncio`` stream reader
(request line, headers, ``Content-Length`` body) and every response is
written with ``Connection: close`` — one request per connection keeps
the parser trivial and is plenty for a simulation service whose jobs
run for milliseconds to minutes.

Routes::

    POST /v1/simulate            admit one job (202; 200 if already done)
    GET  /v1/jobs/<id>           poll one job
    GET  /v1/jobs/<id>/events    Server-Sent Events progress stream
    GET  /healthz                liveness + package version
    GET  /readyz                 200 while admitting, 503 while draining
    GET  /metrics                Prometheus text (obs + broker stats)

Error mapping: protocol/validation failures are 400, unknown jobs 404,
admission overflow 429 with ``Retry-After``, drain 503.

:func:`run_server` wires SIGTERM/SIGINT to a graceful drain — stop
admitting, finish in-flight jobs, flush telemetry, exit 0 — and
:class:`ThreadedServer` runs the same stack on a background thread for
tests and the in-process load-generator path.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
from typing import Any, Mapping

from repro import obs
from repro.common.errors import ReproError
from repro.obs.prometheus import render_prometheus
from repro.serve.broker import (
    AdmissionFull,
    Broker,
    Draining,
    ServeJob,
    UnknownJob,
)
from repro.serve.protocol import (
    ProtocolError,
    SimulateRequest,
    dumps,
    error_body,
    loads,
)

#: Largest accepted request body (a simulate request is < 1 KB).
MAX_BODY_BYTES = 1 << 20
#: Largest accepted header section.
MAX_HEADER_LINES = 64

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpParseError(Exception):
    """A request violated the HTTP framing; carries the error response."""

    def __init__(self, status: int, body: Mapping[str, Any]) -> None:
        super().__init__(body.get("error", {}).get("message", "bad request"))
        self.status = status
        self.body = body


async def read_http_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Parse one request off a stream: ``(method, path, headers, body)``.

    Returns ``None`` for an empty connection (client connected and went
    away) and raises :class:`HttpParseError` on malformed framing.
    Shared by the single-broker server and the cluster router so both
    speak exactly the same dialect.
    """
    request_line = (await reader.readline()).decode("latin-1").strip()
    if not request_line:
        return None
    parts = request_line.split()
    if len(parts) != 3:
        raise HttpParseError(400, error_body(
            "protocol", f"malformed request line {request_line!r}"))
    method, target, _ = parts
    headers: dict[str, str] = {}
    for _ in range(MAX_HEADER_LINES):
        line = (await reader.readline()).decode("latin-1")
        if line in ("\r\n", "\n", ""):
            break
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpParseError(400, error_body(
            "protocol", "too many request headers"))

    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError:
            raise HttpParseError(400, error_body(
                "protocol", f"bad Content-Length {length!r}")) from None
        if size > MAX_BODY_BYTES:
            raise HttpParseError(413, error_body(
                "protocol", f"body of {size} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"))
        body = await reader.readexactly(size)

    return method, target.split("?", 1)[0], headers, body


async def write_raw(writer: asyncio.StreamWriter, status: int,
                    payload: bytes, content_type: str,
                    extra_headers: Mapping[str, str] | None = None) -> None:
    """Write one complete ``Connection: close`` response."""
    reason = _STATUS_TEXT.get(status, "Unknown")
    head = [f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
            "Connection: close"]
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    writer.write(payload)
    await writer.drain()


async def write_json(writer: asyncio.StreamWriter, status: int,
                     document: Mapping[str, Any],
                     extra_headers: Mapping[str, str] | None = None) -> None:
    """Write one JSON response (the canonical body encoding)."""
    await write_raw(writer, status, dumps(document), "application/json",
                    extra_headers)


class HttpServer:
    """The asyncio server: one handler coroutine per connection."""

    def __init__(self, broker: Broker, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.broker = broker
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        """Bind and start serving; ``self.port`` holds the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            await self._handle_one(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as error:  # defensive: a handler bug is a 500
            try:
                await self._respond(writer, 500, error_body(
                    "internal", f"unhandled server error: {error}"))
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _handle_one(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        try:
            parsed = await read_http_request(reader)
        except HttpParseError as error:
            await self._respond(writer, error.status, error.body)
            return
        if parsed is None:
            return
        method, path, _headers, body = parsed
        await self._route(writer, method, path, body)

    async def _route(self, writer: asyncio.StreamWriter, method: str,
                     path: str, body: bytes) -> None:
        if path == "/healthz" and method == "GET":
            await self._handle_healthz(writer)
        elif path == "/readyz" and method == "GET":
            await self._handle_readyz(writer)
        elif path == "/metrics" and method == "GET":
            await self._handle_metrics(writer)
        elif path == "/v1/simulate" and method == "POST":
            await self._handle_simulate(writer, body)
        elif path.startswith("/v1/jobs/") and method == "GET":
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/events"):
                await self._handle_events(writer, rest[:-len("/events")])
            else:
                await self._handle_job(writer, rest)
        else:
            status = 405 if path in ("/v1/simulate", "/healthz", "/readyz",
                                     "/metrics") else 404
            await self._respond(writer, status, error_body(
                "routing", f"no route for {method} {path}"))

    # -- endpoints ----------------------------------------------------------

    async def _handle_healthz(self, writer: asyncio.StreamWriter) -> None:
        import repro

        await self._respond(writer, 200, {
            "status": "ok",
            "version": repro.__version__,
            "draining": self.broker.draining,
            "pending_jobs": self.broker.metrics()["gauges"][
                "serve.pending_jobs"],
        })

    async def _handle_readyz(self, writer: asyncio.StreamWriter) -> None:
        if self.broker.draining:
            await self._respond(writer, 503, error_body(
                "draining", "server is draining"))
        else:
            await self._respond(writer, 200, {"status": "ready"})

    async def _handle_metrics(self, writer: asyncio.StreamWriter) -> None:
        stats = self.broker.metrics()
        text = render_prometheus(
            obs.snapshot(),
            counters=stats["counters"],
            gauges=stats["gauges"],
        )
        await self._respond_raw(writer, 200, text.encode("utf-8"),
                                "text/plain; version=0.0.4")

    async def _handle_simulate(self, writer: asyncio.StreamWriter,
                               body: bytes) -> None:
        try:
            request = SimulateRequest.from_dict(loads(body))
            job, deduplicated = self.broker.submit(request)
        except AdmissionFull as error:
            await self._respond(
                writer, 429,
                error_body("admission-full", str(error),
                           retry_after=error.retry_after),
                extra_headers={"Retry-After":
                               str(max(1, int(error.retry_after)))},
            )
            return
        except Draining as error:
            await self._respond(writer, 503,
                                error_body("draining", str(error)))
            return
        except ReproError as error:
            # ProtocolError, unknown workload/prefetcher, bad config.
            await self._respond(writer, 400, error_body(
                type(error).__name__, str(error)))
            return
        status = 200 if job.status.terminal else 202
        await self._respond(writer, status,
                            job.view(deduplicated=deduplicated).to_dict())

    async def _handle_job(self, writer: asyncio.StreamWriter,
                          job_id: str) -> None:
        try:
            job = self.broker.job(job_id)
        except UnknownJob as error:
            await self._respond(writer, 404,
                                error_body("unknown-job", str(error)))
            return
        await self._respond(writer, 200, job.view().to_dict())

    async def _handle_events(self, writer: asyncio.StreamWriter,
                             job_id: str) -> None:
        try:
            job = self.broker.job(job_id)
        except UnknownJob as error:
            await self._respond(writer, 404,
                                error_body("unknown-job", str(error)))
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        queue = self.broker.subscribe(job)
        try:
            # Replay history, then follow live until the job is terminal.
            for event in list(job.events):
                await self._send_event(writer, job, event)
            if job.status.terminal:
                return
            while True:
                event = await queue.get()
                await self._send_event(writer, job, event)
                if event.get("event") == "terminal":
                    return
        finally:
            self.broker.unsubscribe(job, queue)

    async def _send_event(self, writer: asyncio.StreamWriter, job: ServeJob,
                          event: Mapping[str, Any]) -> None:
        name = str(event.get("event", "message"))
        payload = dict(event)
        if name == "terminal":
            payload["job"] = job.view().to_dict()
        data = json.dumps(payload, sort_keys=True)
        writer.write(f"event: {name}\ndata: {data}\n\n".encode("utf-8"))
        await writer.drain()

    # -- response plumbing --------------------------------------------------

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       document: Mapping[str, Any],
                       extra_headers: Mapping[str, str] | None = None
                       ) -> None:
        await write_json(writer, status, document, extra_headers)

    async def _respond_raw(self, writer: asyncio.StreamWriter, status: int,
                           payload: bytes, content_type: str,
                           extra_headers: Mapping[str, str] | None = None
                           ) -> None:
        await write_raw(writer, status, payload, content_type,
                        extra_headers)


async def run_server(
    *,
    host: str = "127.0.0.1",
    port: int = 8321,
    announce=print,
    ready_event: "threading.Event | None" = None,
    stop_event: "asyncio.Event | None" = None,
    **broker_kwargs: Any,
) -> int:
    """Run broker + HTTP server until SIGTERM/SIGINT, then drain.

    Returns the process exit code (0 after a clean drain).  ``announce``
    receives human-readable startup/drain lines; ``ready_event`` (a
    *threading* event) is set once the port is bound so embedding
    callers can synchronize; ``stop_event`` substitutes for signals
    where signal handlers are unavailable (background threads, tests).
    """
    obs_was_enabled = obs.enabled()
    obs.enable()
    broker = Broker(**broker_kwargs)
    server = HttpServer(broker, host, port)
    await broker.start()
    await server.start()

    if stop_event is None:
        stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed: list[signal.Signals] = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop_event.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):
            # Non-main thread or unsupported platform: stop_event only.
            pass

    shard_suffix = (f", shard={broker.shard_name}"
                    if broker.shard_name != "broker" else "")
    announce(f"repro serve: listening on http://{host}:{server.port} "
             f"(workers={broker.workers}, max_pending={broker.max_pending}"
             f"{shard_suffix})")
    if ready_event is not None:
        ready_event.set()
    try:
        await stop_event.wait()
        announce("repro serve: draining (finishing in-flight jobs)")
        await broker.drain()
        await server.stop()
        announce("repro serve: drained cleanly")
        return 0
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        if not obs_was_enabled:
            obs.disable()


class ThreadedServer:
    """The full serve stack on a background thread (tests, loadgen).

    Usage::

        with ThreadedServer(workers=1, cache_dir=tmp) as server:
            client = ServeClient(port=server.port)
            ...

    Exiting the context performs the same graceful drain as SIGTERM.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 **broker_kwargs: Any) -> None:
        self.host = host
        self.port = port
        self.exit_code: int | None = None
        self._broker_kwargs = broker_kwargs
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._server_box: list[HttpServer] = []
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve", daemon=True)

    def _run(self) -> None:
        async def main() -> int:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            return await run_server(
                host=self.host,
                port=self.port,
                announce=self._capture_announce,
                ready_event=self._ready,
                stop_event=self._stop,
                **self._broker_kwargs,
            )

        self.exit_code = asyncio.run(main())

    def _capture_announce(self, line: str) -> None:
        marker = "listening on http://"
        if marker in line:
            address = line.split(marker, 1)[1].split()[0]
            self.port = int(address.rsplit(":", 1)[1])

    def start(self, timeout: float = 30.0) -> "ThreadedServer":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ReproError("threaded serve stack failed to start")
        return self

    def stop(self, timeout: float = 60.0) -> int:
        """Drain gracefully and join the server thread."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise ReproError("threaded serve stack did not drain in time")
        return self.exit_code if self.exit_code is not None else 1

    def __enter__(self) -> "ThreadedServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def main_serve(args: Any) -> int:
    """``repro serve`` entry point (driven by :mod:`repro.cli`)."""
    import os

    workers = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    try:
        return asyncio.run(run_server(
            host=args.host,
            port=args.port,
            workers=workers,
            cache_dir=args.cache_dir,
            max_pending=args.max_pending,
            batch_window=args.batch_window,
            batch_max=args.batch_max,
            task_timeout=args.timeout,
            shard_name=getattr(args, "shard_name", "broker"),
            recover=not getattr(args, "no_recover", False),
        ))
    except KeyboardInterrupt:  # SIGINT before the handler was installed
        print("repro serve: interrupted before drain", file=sys.stderr)
        return 130
