"""Closed-loop load generator for ``repro serve``.

``repro loadgen`` drives a running server with a seeded workload mix
from ``concurrency`` closed-loop worker threads (each waits for its
job to finish before issuing the next), and emits a schema-versioned
``BENCH_serve.json`` with throughput, latency percentiles, and the
dedup / cache hit rates observed both client-side (response flags) and
server-side (a ``/metrics`` delta).

Single-flight is exercised deterministically, not probabilistically: a
fraction ``duplicate_ratio`` of plan items are *paired duplicates* —
the worker submits the identical request twice back-to-back before
waiting, so the second submission reliably lands while the first is in
flight and must attach to it.  Repeated non-paired duplicates across
the run exercise the result cache instead (same key, no longer in
flight, replayed without simulating).
"""

from __future__ import annotations

import queue
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.exec.keys import stable_hash
from repro.obs.prometheus import parse_prometheus
from repro.serve.client import (
    RetryPolicy,
    ServeClient,
    ServeClientError,
    ServerBusy,
)
from repro.serve.protocol import JobStatus, SimulateRequest

#: Schema identity of the emitted JSON document.
SERVE_BENCH_SCHEMA = "repro.bench.serve"
SERVE_BENCH_SCHEMA_VERSION = 1
#: Schema identity of the cluster-mode document (availability-focused).
CLUSTER_BENCH_SCHEMA = "repro.bench.cluster"
CLUSTER_BENCH_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-generation run (all knobs pinned for reproducibility)."""

    host: str = "127.0.0.1"
    port: int = 8321
    requests: int = 40
    concurrency: int = 4
    duplicate_ratio: float = 0.25
    seed: int = 0
    workloads: tuple[str, ...] = ("nw", "stencil-default")
    prefetchers: tuple[str, ...] = ("no-prefetch", "stride", "cbws")
    budget_fraction: float = 0.05
    scale: float = 1.0
    timeout: float = 600.0
    #: Attempts per item when the server answers 429.
    max_busy_retries: int = 5
    #: Guarantee every (workload, prefetcher) cell appears in the plan
    #: before random draws fill the rest.  Cluster chaos drills rely on
    #: this: with the full grid present, the pigeonhole principle puts
    #: at least two jobs on some shard of a 3-shard ring, so a
    #: second-job fault (``serve.job-finished:exit@2``) *must* fire.
    cover_grid: bool = False

    @classmethod
    def quick(cls, host: str = "127.0.0.1", port: int = 8321,
              seed: int = 0) -> "LoadgenConfig":
        """The CI smoke shape: small, duplicate-heavy, two prefetchers."""
        return cls(
            host=host,
            port=port,
            requests=12,
            concurrency=3,
            duplicate_ratio=0.5,
            seed=seed,
            workloads=("nw",),
            prefetchers=("no-prefetch", "stride"),
            budget_fraction=0.02,
        )

    @classmethod
    def quick_cluster(cls, host: str = "127.0.0.1", port: int = 8400,
                      seed: int = 0) -> "LoadgenConfig":
        """The CI cluster smoke shape: 6 unique cells over one workload.

        Six distinct sim keys spread over a 3-shard ring guarantee some
        shard owns at least two jobs (pigeonhole), which is what arms
        the kill-shard chaos drill deterministically.
        """
        return cls(
            host=host,
            port=port,
            requests=12,
            concurrency=3,
            duplicate_ratio=0.25,
            seed=seed,
            workloads=("nw",),
            prefetchers=("no-prefetch", "stride", "ghb-pc/dc",
                         "ghb-g/dc", "sms", "cbws"),
            budget_fraction=0.02,
            cover_grid=True,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view, embedded in the bench document."""
        return {
            "requests": self.requests,
            "concurrency": self.concurrency,
            "duplicate_ratio": self.duplicate_ratio,
            "seed": self.seed,
            "workloads": list(self.workloads),
            "prefetchers": list(self.prefetchers),
            "budget_fraction": self.budget_fraction,
            "scale": self.scale,
            "cover_grid": self.cover_grid,
        }


@dataclass
class _Tally:
    """Thread-shared accounting (guarded by ``lock``)."""

    lock: threading.Lock = field(default_factory=threading.Lock)
    submissions: int = 0
    ok: int = 0
    failed: int = 0
    rejected: int = 0
    dedup_hits: int = 0
    cache_hits: int = 0
    latencies: list[float] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)


def build_plan(config: LoadgenConfig) -> list[tuple[SimulateRequest, bool]]:
    """The seeded request mix: ``(request, paired_duplicate)`` items."""
    rng = random.Random(config.seed)
    plan: list[tuple[SimulateRequest, bool]] = []
    if config.cover_grid:
        # Deterministic full-grid prefix: every cell exactly once.
        for workload in config.workloads:
            for prefetcher in config.prefetchers:
                if len(plan) >= config.requests:
                    break
                request = SimulateRequest(
                    workload=workload,
                    prefetcher=prefetcher,
                    scale=config.scale,
                    budget_fraction=config.budget_fraction,
                    seed=0,
                )
                plan.append((request, rng.random()
                             < config.duplicate_ratio))
    while len(plan) < config.requests:
        request = SimulateRequest(
            workload=rng.choice(config.workloads),
            prefetcher=rng.choice(config.prefetchers),
            scale=config.scale,
            budget_fraction=config.budget_fraction,
            seed=0,
        )
        plan.append((request, rng.random() < config.duplicate_ratio))
    return plan


def _submit_with_retry(client: ServeClient, config: LoadgenConfig,
                       request: SimulateRequest, tally: _Tally):
    """One admission attempt, honouring Retry-After on 429."""
    for _ in range(config.max_busy_retries):
        try:
            with tally.lock:
                tally.submissions += 1
            return client.submit(request)
        except ServerBusy as busy:
            with tally.lock:
                tally.rejected += 1
            time.sleep(min(busy.retry_after, 2.0))
    return None


def _account_terminal(view, started: float, tally: _Tally) -> None:
    latency = time.perf_counter() - started
    with tally.lock:
        tally.latencies.append(latency)
        if view.status is JobStatus.DONE:
            tally.ok += 1
            if view.cache_hit:
                tally.cache_hits += 1
        else:
            tally.failed += 1
            if view.error:
                tally.errors.append(view.error)


def _worker(client: ServeClient, config: LoadgenConfig,
            items: "queue.Queue[tuple[SimulateRequest, bool]]",
            tally: _Tally) -> None:
    while True:
        try:
            request, paired = items.get_nowait()
        except queue.Empty:
            return
        started = time.perf_counter()
        first = _submit_with_retry(client, config, request, tally)
        if first is None:
            continue
        second = None
        second_started = None
        if paired:
            # Submit the identical request again *before* waiting: the
            # first is still in flight, so this must single-flight.
            second_started = time.perf_counter()
            second = _submit_with_retry(client, config, request, tally)
            if second is not None and second.deduplicated:
                with tally.lock:
                    tally.dedup_hits += 1
        if first.deduplicated:
            with tally.lock:
                tally.dedup_hits += 1

        view = (first if first.status.terminal
                else client.wait(first.job_id, timeout=config.timeout))
        _account_terminal(view, started, tally)
        if second is not None:
            second_view = (
                second if second.status.terminal
                else client.wait(second.job_id, timeout=config.timeout))
            _account_terminal(second_view, second_started, tally)


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def _metrics_delta(before: dict[str, float], after: dict[str, float],
                   prefixes: tuple[str, ...] = ("repro_serve_",)
                   ) -> dict[str, float]:
    delta = {}
    for name, value in after.items():
        if name.startswith(prefixes) and name.endswith("_total"):
            delta[name] = value - before.get(name, 0.0)
    return delta


def run_loadgen(config: LoadgenConfig, announce=None) -> dict[str, Any]:
    """Drive the server and return the ``BENCH_serve.json`` document."""
    client = ServeClient(config.host, config.port,
                         timeout=max(30.0, config.timeout))
    client.wait_until_ready()
    health = client.health()
    metrics_before = parse_prometheus(client.metrics_text())

    items: "queue.Queue[tuple[SimulateRequest, bool]]" = queue.Queue()
    for item in build_plan(config):
        items.put(item)

    tally = _Tally()
    threads = [
        threading.Thread(target=_worker,
                         args=(client, config, items, tally),
                         name=f"loadgen-{index}")
        for index in range(max(1, config.concurrency))
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_seconds = time.perf_counter() - started

    metrics_after = parse_prometheus(client.metrics_text())
    latencies = sorted(tally.latencies)
    completed = tally.ok + tally.failed
    document: dict[str, Any] = {
        "schema": SERVE_BENCH_SCHEMA,
        "schema_version": SERVE_BENCH_SCHEMA_VERSION,
        "loadgen": config.to_dict(),
        "server": {
            "version": health.get("version"),
            "metrics_delta": _metrics_delta(metrics_before, metrics_after),
        },
        "totals": {
            "submissions": tally.submissions,
            "completed": completed,
            "ok": tally.ok,
            "failed": tally.failed,
            "rejected_429": tally.rejected,
            "wall_seconds": wall_seconds,
            "throughput_rps": (completed / wall_seconds
                               if wall_seconds > 0 else 0.0),
            "dedup_hits": tally.dedup_hits,
            "dedup_hit_rate": (tally.dedup_hits / tally.submissions
                               if tally.submissions else 0.0),
            "cache_hits": tally.cache_hits,
            "cache_hit_rate": (tally.cache_hits / completed
                               if completed else 0.0),
        },
        "latency_seconds": {
            "mean": (sum(latencies) / len(latencies) if latencies else 0.0),
            "p50": _percentile(latencies, 0.50),
            "p95": _percentile(latencies, 0.95),
            "p99": _percentile(latencies, 0.99),
            "max": latencies[-1] if latencies else 0.0,
        },
        "errors": tally.errors[:10],
    }
    if announce is not None:
        announce(render_loadgen(document))
    return document


def _cluster_worker(client: ServeClient, config: LoadgenConfig,
                    items: "queue.Queue[tuple[SimulateRequest, bool]]",
                    tally: _Tally, digests: dict[str, str]) -> None:
    """Closed-loop worker for cluster mode: failover-tolerant one-shots.

    Every item goes through :meth:`ServeClient.run` under the client's
    retry policy, so shard deaths mid-run surface here only as elevated
    latency — unless retries are exhausted, which counts as a failed
    request (availability < 1).  Result digests are recorded per sim
    key so a chaos run can be proven bit-identical to a fault-free one.
    """
    while True:
        try:
            request, paired = items.get_nowait()
        except queue.Empty:
            return
        submissions = 2 if paired else 1
        for _ in range(submissions):
            started = time.perf_counter()
            with tally.lock:
                tally.submissions += 1
            try:
                view = client.run(request, timeout=config.timeout)
            except ServeClientError as error:
                with tally.lock:
                    tally.failed += 1
                    tally.latencies.append(time.perf_counter() - started)
                    tally.errors.append(str(error))
                continue
            _account_terminal(view, started, tally)
            if view.status is JobStatus.DONE and view.result is not None:
                digest = stable_hash(dict(view.result))
                with tally.lock:
                    previous = digests.get(view.key)
                    if previous is not None and previous != digest:
                        tally.errors.append(
                            f"digest conflict for {view.key[:12]}…: "
                            f"{previous[:12]} != {digest[:12]}")
                    digests[view.key] = digest


def run_cluster_loadgen(config: LoadgenConfig,
                        announce=None) -> dict[str, Any]:
    """Drive a cluster and return the ``BENCH_cluster.json`` document.

    The headline numbers are *availability* (requests that completed OK
    after retries, over all submissions) and the latency percentiles —
    under chaos, p99 measures how well bounded-jitter retry rides out a
    shard kill+restart.  ``digests`` maps each sim key to a stable hash
    of its result payload for cross-run bit-identity checks.
    """
    probe = ServeClient(config.host, config.port, timeout=30.0)
    probe.wait_until_ready(timeout=90.0)
    health = probe.health()
    metrics_before = parse_prometheus(probe.metrics_text())

    items: "queue.Queue[tuple[SimulateRequest, bool]]" = queue.Queue()
    for item in build_plan(config):
        items.put(item)

    policy = RetryPolicy(max_attempts=10, base_delay=0.2, max_delay=5.0,
                         max_deadline=max(120.0, config.timeout))
    tally = _Tally()
    digests: dict[str, str] = {}
    clients = [ServeClient(config.host, config.port,
                           timeout=max(30.0, config.timeout), retry=policy)
               for _ in range(max(1, config.concurrency))]
    threads = [
        threading.Thread(target=_cluster_worker,
                         args=(client, config, items, tally, digests),
                         name=f"loadgen-cluster-{index}")
        for index, client in enumerate(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_seconds = time.perf_counter() - started

    metrics_after = parse_prometheus(probe.metrics_text())
    cluster_health = probe.health()
    latencies = sorted(tally.latencies)
    completed = tally.ok + tally.failed
    retries = sum(client.retries for client in clients)
    document: dict[str, Any] = {
        "schema": CLUSTER_BENCH_SCHEMA,
        "schema_version": CLUSTER_BENCH_SCHEMA_VERSION,
        "loadgen": config.to_dict(),
        "cluster": {
            "version": health.get("version"),
            "shards": cluster_health.get("shards"),
            "shards_healthy": cluster_health.get("shards_healthy"),
            "metrics_delta": _metrics_delta(
                metrics_before, metrics_after,
                prefixes=("repro_serve_", "repro_cluster_")),
        },
        "totals": {
            "submissions": tally.submissions,
            "completed": completed,
            "ok": tally.ok,
            "failed": tally.failed,
            "retries": retries,
            "wall_seconds": wall_seconds,
            "throughput_rps": (completed / wall_seconds
                               if wall_seconds > 0 else 0.0),
            "availability": (tally.ok / tally.submissions
                             if tally.submissions else 0.0),
            "cache_hits": tally.cache_hits,
        },
        "latency_seconds": {
            "mean": (sum(latencies) / len(latencies) if latencies else 0.0),
            "p50": _percentile(latencies, 0.50),
            "p95": _percentile(latencies, 0.95),
            "p99": _percentile(latencies, 0.99),
            "max": latencies[-1] if latencies else 0.0,
        },
        "digests": dict(sorted(digests.items())),
        "errors": tally.errors[:10],
    }
    if announce is not None:
        announce(render_cluster_loadgen(document))
    return document


def render_cluster_loadgen(document: dict[str, Any]) -> str:
    """Terminal summary of one cluster loadgen document."""
    totals = document["totals"]
    latency = document["latency_seconds"]
    cluster = document["cluster"]
    lines = [
        f"repro loadgen --cluster ({totals['submissions']} submission(s), "
        f"{document['loadgen']['concurrency']} worker(s))",
        "-" * 64,
        f"  availability:   {totals['availability']:.1%} "
        f"({totals['ok']} ok / {totals['failed']} failed, "
        f"{totals['retries']} retry(ies))",
        f"  wall time:      {totals['wall_seconds']:.2f}s  "
        f"throughput {totals['throughput_rps']:.2f} req/s",
        f"  latency:        p50 {latency['p50'] * 1000:.0f}ms  "
        f"p95 {latency['p95'] * 1000:.0f}ms  "
        f"p99 {latency['p99'] * 1000:.0f}ms  "
        f"max {latency['max'] * 1000:.0f}ms",
        f"  shards healthy: {cluster.get('shards_healthy')}",
        f"  unique cells:   {len(document['digests'])} digest(s)",
    ]
    return "\n".join(lines)


def render_loadgen(document: dict[str, Any]) -> str:
    """Terminal summary of one loadgen document."""
    totals = document["totals"]
    latency = document["latency_seconds"]
    lines = [
        f"repro loadgen ({totals['submissions']} submission(s), "
        f"{document['loadgen']['concurrency']} worker(s), duplicate ratio "
        f"{document['loadgen']['duplicate_ratio']:.0%})",
        "-" * 64,
        f"  completed:      {totals['completed']} "
        f"({totals['ok']} ok, {totals['failed']} failed, "
        f"{totals['rejected_429']} x 429)",
        f"  wall time:      {totals['wall_seconds']:.2f}s",
        f"  throughput:     {totals['throughput_rps']:.2f} req/s",
        f"  latency:        p50 {latency['p50'] * 1000:.0f}ms  "
        f"p95 {latency['p95'] * 1000:.0f}ms  "
        f"p99 {latency['p99'] * 1000:.0f}ms  "
        f"max {latency['max'] * 1000:.0f}ms",
        f"  dedup hit rate: {totals['dedup_hit_rate']:.1%} "
        f"({totals['dedup_hits']} single-flight join(s))",
        f"  cache hit rate: {totals['cache_hit_rate']:.1%} "
        f"({totals['cache_hits']} replay(s))",
    ]
    return "\n".join(lines)
