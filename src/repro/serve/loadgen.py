"""Closed-loop load generator for ``repro serve``.

``repro loadgen`` drives a running server with a seeded workload mix
from ``concurrency`` closed-loop worker threads (each waits for its
job to finish before issuing the next), and emits a schema-versioned
``BENCH_serve.json`` with throughput, latency percentiles, and the
dedup / cache hit rates observed both client-side (response flags) and
server-side (a ``/metrics`` delta).

Single-flight is exercised deterministically, not probabilistically: a
fraction ``duplicate_ratio`` of plan items are *paired duplicates* —
the worker submits the identical request twice back-to-back before
waiting, so the second submission reliably lands while the first is in
flight and must attach to it.  Repeated non-paired duplicates across
the run exercise the result cache instead (same key, no longer in
flight, replayed without simulating).
"""

from __future__ import annotations

import queue
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.obs.prometheus import parse_prometheus
from repro.serve.client import ServeClient, ServerBusy
from repro.serve.protocol import JobStatus, SimulateRequest

#: Schema identity of the emitted JSON document.
SERVE_BENCH_SCHEMA = "repro.bench.serve"
SERVE_BENCH_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-generation run (all knobs pinned for reproducibility)."""

    host: str = "127.0.0.1"
    port: int = 8321
    requests: int = 40
    concurrency: int = 4
    duplicate_ratio: float = 0.25
    seed: int = 0
    workloads: tuple[str, ...] = ("nw", "stencil-default")
    prefetchers: tuple[str, ...] = ("no-prefetch", "stride", "cbws")
    budget_fraction: float = 0.05
    scale: float = 1.0
    timeout: float = 600.0
    #: Attempts per item when the server answers 429.
    max_busy_retries: int = 5

    @classmethod
    def quick(cls, host: str = "127.0.0.1", port: int = 8321,
              seed: int = 0) -> "LoadgenConfig":
        """The CI smoke shape: small, duplicate-heavy, two prefetchers."""
        return cls(
            host=host,
            port=port,
            requests=12,
            concurrency=3,
            duplicate_ratio=0.5,
            seed=seed,
            workloads=("nw",),
            prefetchers=("no-prefetch", "stride"),
            budget_fraction=0.02,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view, embedded in the bench document."""
        return {
            "requests": self.requests,
            "concurrency": self.concurrency,
            "duplicate_ratio": self.duplicate_ratio,
            "seed": self.seed,
            "workloads": list(self.workloads),
            "prefetchers": list(self.prefetchers),
            "budget_fraction": self.budget_fraction,
            "scale": self.scale,
        }


@dataclass
class _Tally:
    """Thread-shared accounting (guarded by ``lock``)."""

    lock: threading.Lock = field(default_factory=threading.Lock)
    submissions: int = 0
    ok: int = 0
    failed: int = 0
    rejected: int = 0
    dedup_hits: int = 0
    cache_hits: int = 0
    latencies: list[float] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)


def build_plan(config: LoadgenConfig) -> list[tuple[SimulateRequest, bool]]:
    """The seeded request mix: ``(request, paired_duplicate)`` items."""
    rng = random.Random(config.seed)
    plan: list[tuple[SimulateRequest, bool]] = []
    for _ in range(config.requests):
        request = SimulateRequest(
            workload=rng.choice(config.workloads),
            prefetcher=rng.choice(config.prefetchers),
            scale=config.scale,
            budget_fraction=config.budget_fraction,
            seed=0,
        )
        plan.append((request, rng.random() < config.duplicate_ratio))
    return plan


def _submit_with_retry(client: ServeClient, config: LoadgenConfig,
                       request: SimulateRequest, tally: _Tally):
    """One admission attempt, honouring Retry-After on 429."""
    for _ in range(config.max_busy_retries):
        try:
            with tally.lock:
                tally.submissions += 1
            return client.submit(request)
        except ServerBusy as busy:
            with tally.lock:
                tally.rejected += 1
            time.sleep(min(busy.retry_after, 2.0))
    return None


def _account_terminal(view, started: float, tally: _Tally) -> None:
    latency = time.perf_counter() - started
    with tally.lock:
        tally.latencies.append(latency)
        if view.status is JobStatus.DONE:
            tally.ok += 1
            if view.cache_hit:
                tally.cache_hits += 1
        else:
            tally.failed += 1
            if view.error:
                tally.errors.append(view.error)


def _worker(client: ServeClient, config: LoadgenConfig,
            items: "queue.Queue[tuple[SimulateRequest, bool]]",
            tally: _Tally) -> None:
    while True:
        try:
            request, paired = items.get_nowait()
        except queue.Empty:
            return
        started = time.perf_counter()
        first = _submit_with_retry(client, config, request, tally)
        if first is None:
            continue
        second = None
        second_started = None
        if paired:
            # Submit the identical request again *before* waiting: the
            # first is still in flight, so this must single-flight.
            second_started = time.perf_counter()
            second = _submit_with_retry(client, config, request, tally)
            if second is not None and second.deduplicated:
                with tally.lock:
                    tally.dedup_hits += 1
        if first.deduplicated:
            with tally.lock:
                tally.dedup_hits += 1

        view = (first if first.status.terminal
                else client.wait(first.job_id, timeout=config.timeout))
        _account_terminal(view, started, tally)
        if second is not None:
            second_view = (
                second if second.status.terminal
                else client.wait(second.job_id, timeout=config.timeout))
            _account_terminal(second_view, second_started, tally)


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def _metrics_delta(before: dict[str, float],
                   after: dict[str, float]) -> dict[str, float]:
    delta = {}
    for name, value in after.items():
        if name.startswith("repro_serve_") and name.endswith("_total"):
            delta[name] = value - before.get(name, 0.0)
    return delta


def run_loadgen(config: LoadgenConfig, announce=None) -> dict[str, Any]:
    """Drive the server and return the ``BENCH_serve.json`` document."""
    client = ServeClient(config.host, config.port,
                         timeout=max(30.0, config.timeout))
    client.wait_until_ready()
    health = client.health()
    metrics_before = parse_prometheus(client.metrics_text())

    items: "queue.Queue[tuple[SimulateRequest, bool]]" = queue.Queue()
    for item in build_plan(config):
        items.put(item)

    tally = _Tally()
    threads = [
        threading.Thread(target=_worker,
                         args=(client, config, items, tally),
                         name=f"loadgen-{index}")
        for index in range(max(1, config.concurrency))
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_seconds = time.perf_counter() - started

    metrics_after = parse_prometheus(client.metrics_text())
    latencies = sorted(tally.latencies)
    completed = tally.ok + tally.failed
    document: dict[str, Any] = {
        "schema": SERVE_BENCH_SCHEMA,
        "schema_version": SERVE_BENCH_SCHEMA_VERSION,
        "loadgen": config.to_dict(),
        "server": {
            "version": health.get("version"),
            "metrics_delta": _metrics_delta(metrics_before, metrics_after),
        },
        "totals": {
            "submissions": tally.submissions,
            "completed": completed,
            "ok": tally.ok,
            "failed": tally.failed,
            "rejected_429": tally.rejected,
            "wall_seconds": wall_seconds,
            "throughput_rps": (completed / wall_seconds
                               if wall_seconds > 0 else 0.0),
            "dedup_hits": tally.dedup_hits,
            "dedup_hit_rate": (tally.dedup_hits / tally.submissions
                               if tally.submissions else 0.0),
            "cache_hits": tally.cache_hits,
            "cache_hit_rate": (tally.cache_hits / completed
                               if completed else 0.0),
        },
        "latency_seconds": {
            "mean": (sum(latencies) / len(latencies) if latencies else 0.0),
            "p50": _percentile(latencies, 0.50),
            "p95": _percentile(latencies, 0.95),
            "p99": _percentile(latencies, 0.99),
            "max": latencies[-1] if latencies else 0.0,
        },
        "errors": tally.errors[:10],
    }
    if announce is not None:
        announce(render_loadgen(document))
    return document


def render_loadgen(document: dict[str, Any]) -> str:
    """Terminal summary of one loadgen document."""
    totals = document["totals"]
    latency = document["latency_seconds"]
    lines = [
        f"repro loadgen ({totals['submissions']} submission(s), "
        f"{document['loadgen']['concurrency']} worker(s), duplicate ratio "
        f"{document['loadgen']['duplicate_ratio']:.0%})",
        "-" * 64,
        f"  completed:      {totals['completed']} "
        f"({totals['ok']} ok, {totals['failed']} failed, "
        f"{totals['rejected_429']} x 429)",
        f"  wall time:      {totals['wall_seconds']:.2f}s",
        f"  throughput:     {totals['throughput_rps']:.2f} req/s",
        f"  latency:        p50 {latency['p50'] * 1000:.0f}ms  "
        f"p95 {latency['p95'] * 1000:.0f}ms  "
        f"p99 {latency['p99'] * 1000:.0f}ms  "
        f"max {latency['max'] * 1000:.0f}ms",
        f"  dedup hit rate: {totals['dedup_hit_rate']:.1%} "
        f"({totals['dedup_hits']} single-flight join(s))",
        f"  cache hit rate: {totals['cache_hit_rate']:.1%} "
        f"({totals['cache_hits']} replay(s))",
    ]
    return "\n".join(lines)
