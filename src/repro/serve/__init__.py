"""Simulation-as-a-service: the grid behind an asyncio HTTP API.

Layout::

    protocol    versioned wire types (SimulateRequest, JobView, errors)
    broker      admission control, single-flight dedup, micro-batching
    recovery    CRC-framed write-ahead job journal + restart replay
    http        hand-rolled asyncio HTTP/1.1 server + SSE streaming
    client      blocking stdlib client with failover retry policy
    loadgen     closed-loop load generator (BENCH_serve/BENCH_cluster)

The broker is the core: it turns individual ``POST /v1/simulate``
requests into batched :class:`~repro.exec.scheduler.GridPlan`
executions on one persistent worker pool, deduplicating identical
in-flight requests by content-addressed key and serving result-cache
hits without touching the pool at all.  Accepted jobs are journaled
so a crashed broker re-admits unfinished work on restart; see
:mod:`repro.cluster` for the multi-shard supervisor built on top.
"""

from repro.serve.broker import AdmissionFull, Broker, Draining, UnknownJob
from repro.serve.client import (
    ConnectionFailed,
    DeadlineExceeded,
    JobNotFound,
    RetryPolicy,
    ServeClient,
    ServeClientError,
    ServerBusy,
    ServerDraining,
)
from repro.serve.http import HttpServer, ThreadedServer, run_server
from repro.serve.loadgen import (
    CLUSTER_BENCH_SCHEMA,
    CLUSTER_BENCH_SCHEMA_VERSION,
    SERVE_BENCH_SCHEMA,
    SERVE_BENCH_SCHEMA_VERSION,
    LoadgenConfig,
    run_cluster_loadgen,
    run_loadgen,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    JobStatus,
    JobView,
    ProtocolError,
    SimulateRequest,
)
from repro.serve.recovery import ServeJournal, journal_path, replay_unfinished

__all__ = [
    "CLUSTER_BENCH_SCHEMA",
    "CLUSTER_BENCH_SCHEMA_VERSION",
    "PROTOCOL_VERSION",
    "SERVE_BENCH_SCHEMA",
    "SERVE_BENCH_SCHEMA_VERSION",
    "AdmissionFull",
    "Broker",
    "ConnectionFailed",
    "DeadlineExceeded",
    "Draining",
    "HttpServer",
    "JobNotFound",
    "JobStatus",
    "JobView",
    "LoadgenConfig",
    "ProtocolError",
    "RetryPolicy",
    "ServeClient",
    "ServeClientError",
    "ServeJournal",
    "ServerBusy",
    "ServerDraining",
    "SimulateRequest",
    "ThreadedServer",
    "UnknownJob",
    "journal_path",
    "replay_unfinished",
    "run_cluster_loadgen",
    "run_loadgen",
    "run_server",
]
