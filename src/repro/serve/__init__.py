"""Simulation-as-a-service: the grid behind an asyncio HTTP API.

Layout::

    protocol    versioned wire types (SimulateRequest, JobView, errors)
    broker      admission control, single-flight dedup, micro-batching
    http        hand-rolled asyncio HTTP/1.1 server + SSE streaming
    client      blocking stdlib client (CLI + tests drive this)
    loadgen     closed-loop load generator emitting BENCH_serve.json

The broker is the core: it turns individual ``POST /v1/simulate``
requests into batched :class:`~repro.exec.scheduler.GridPlan`
executions on one persistent worker pool, deduplicating identical
in-flight requests by content-addressed key and serving result-cache
hits without touching the pool at all.
"""

from repro.serve.broker import AdmissionFull, Broker, Draining, UnknownJob
from repro.serve.client import (
    JobNotFound,
    ServeClient,
    ServeClientError,
    ServerBusy,
    ServerDraining,
)
from repro.serve.http import HttpServer, ThreadedServer, run_server
from repro.serve.loadgen import (
    SERVE_BENCH_SCHEMA,
    SERVE_BENCH_SCHEMA_VERSION,
    LoadgenConfig,
    run_loadgen,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    JobStatus,
    JobView,
    ProtocolError,
    SimulateRequest,
)

__all__ = [
    "PROTOCOL_VERSION",
    "SERVE_BENCH_SCHEMA",
    "SERVE_BENCH_SCHEMA_VERSION",
    "AdmissionFull",
    "Broker",
    "Draining",
    "HttpServer",
    "JobNotFound",
    "JobStatus",
    "JobView",
    "LoadgenConfig",
    "ProtocolError",
    "ServeClient",
    "ServeClientError",
    "ServerBusy",
    "ServerDraining",
    "SimulateRequest",
    "ThreadedServer",
    "UnknownJob",
    "run_loadgen",
    "run_server",
]
