"""The request broker: admission, single-flight, batching, drain.

One :class:`Broker` owns the path from a validated
:class:`~repro.serve.protocol.SimulateRequest` to a terminal job:

1. **Admission.**  ``submit`` is synchronous on the event loop.  A
   bounded count of non-terminal jobs (``max_pending``) provides
   backpressure: overflow raises :class:`AdmissionFull`, which the HTTP
   layer turns into ``429`` with a ``Retry-After`` estimated from
   recent job wall times.  During drain, :class:`Draining` maps to
   ``503``.
2. **Single-flight.**  Jobs are identified by the content-addressed
   :func:`~repro.exec.keys.sim_key` of their fully resolved request.  A
   request whose key is already in flight attaches to the leader job
   (via :class:`repro.exec.SingleFlight`) instead of queueing duplicate
   work — the second of two concurrent identical submits costs nothing.
3. **Micro-batching.**  A background task drains the admission queue,
   gathers up to ``batch_max`` jobs inside a ``batch_window`` seconds
   window, groups them by compatibility (identical trace parameters and
   machine config), and executes each group as *one*
   :class:`~repro.exec.plan.GridPlan` through
   :func:`~repro.exec.scheduler.execute_grid` — sharing trace builds
   across the batch exactly like a CLI grid run.  With ``workers > 1``
   the broker owns a persistent :class:`~repro.exec.pool.WorkerPool`
   that every batch submits into, so worker startup is paid once per
   server, not once per request.
4. **Caching.**  ``execute_grid`` probes the same content-addressed
   :class:`~repro.exec.cache.ResultCache` the CLI uses; a repeated
   request is a pure cache read and never touches the pool.
5. **Crash recovery.**  With a cache dir, every admission and terminal
   transition is journaled through :mod:`repro.serve.recovery`; a
   restarted broker re-admits journaled-but-unfinished jobs before it
   batches anything, and a clean drain deletes the journal.
6. **Drain.**  ``begin_drain`` stops admission; :meth:`drain` waits for
   every in-flight job, shuts the pool down, and flushes a telemetry
   snapshot next to the cache — SIGTERM maps onto exactly this
   sequence.

Results are bit-identical to ``repro run`` for the same cell: the
broker feeds the identical plan/config/seed into the identical engine.
"""

from __future__ import annotations

import asyncio
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro import obs
from repro.common.errors import ReproError
from repro.exec import ExecOptions, GridPlan, ResultCache, SingleFlight
from repro.exec import faults
from repro.exec.keys import stable_hash
from repro.exec.pool import WorkerPool
from repro.exec.scheduler import execute_grid
from repro.serve.protocol import JobStatus, JobView, SimulateRequest
from repro.serve.recovery import ServeJournal, journal_path, replay_unfinished
from repro.sim.config import REDUCED_CONFIG, SimConfig
from repro.sim.results import SimResult


class AdmissionFull(ReproError):
    """The bounded admission queue is full; retry after a while."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class Draining(ReproError):
    """The server is draining and no longer admits new work."""


class UnknownJob(ReproError):
    """No job with the requested id exists (or it was evicted)."""


@dataclass
class ServeJob:
    """Broker-internal state of one admitted simulation job."""

    job_id: str
    key: str
    request: SimulateRequest
    config: SimConfig
    status: JobStatus = JobStatus.QUEUED
    cache_hit: bool | None = None
    result: SimResult | None = None
    error: str | None = None
    submitted_monotonic: float = field(default_factory=time.monotonic)
    wall_seconds: float | None = None
    #: Every progress event emitted so far (replayed to new SSE readers).
    events: list[dict[str, Any]] = field(default_factory=list)
    #: Live SSE readers; each gets every new event.
    subscribers: list[asyncio.Queue] = field(default_factory=list)
    done: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def cell(self) -> tuple[str, str]:
        return (self.request.workload, self.request.prefetcher)

    def view(self, deduplicated: bool = False) -> JobView:
        """The externally visible snapshot of this job."""
        return JobView(
            job_id=self.job_id,
            status=self.status,
            workload=self.request.workload,
            prefetcher=self.request.prefetcher,
            key=self.key,
            deduplicated=deduplicated,
            cache_hit=self.cache_hit,
            wall_seconds=self.wall_seconds,
            result=(self.result.to_dict()
                    if self.result is not None else None),
            error=self.error,
        )


#: Terminal jobs kept around for polling before FIFO eviction.
JOB_HISTORY_LIMIT = 1024

#: Retry-After bounds: never tell a client to hot-spin (< floor) or to
#: stay away for minutes on a transient spike (> cap).
RETRY_AFTER_FLOOR = 1.0
RETRY_AFTER_CAP = 120.0

#: Assumed per-job wall time for the Retry-After estimate before any
#: real sample exists (a reduced-config cell is a couple of seconds).
COLD_START_CELL_SECONDS = 2.0


class Broker:
    """Admission control + single-flight + batched execution."""

    def __init__(
        self,
        *,
        workers: int = 1,
        cache_dir: str | Path | None = None,
        base_config: SimConfig = REDUCED_CONFIG,
        max_pending: int = 64,
        batch_window: float = 0.02,
        batch_max: int = 16,
        task_timeout: float | None = None,
        max_retries: int = 2,
        shard_name: str = "broker",
        recover: bool = True,
    ) -> None:
        self.workers = max(1, workers)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.base_config = base_config
        self.max_pending = max_pending
        self.batch_window = batch_window
        self.batch_max = max(1, batch_max)
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.shard_name = shard_name
        self.recover = recover

        self._cache = (ResultCache(self.cache_dir / "results")
                       if self.cache_dir is not None else None)
        #: Write-ahead job journal (crash recovery); None without a
        #: cache dir — no durable state means nothing to recover into.
        self._journal = (ServeJournal(journal_path(self.cache_dir,
                                                   shard_name))
                         if self.cache_dir is not None else None)
        self._pool = (WorkerPool(self.workers)
                      if self.workers > 1 else None)
        self._singleflight: SingleFlight[ServeJob] = SingleFlight()
        self._jobs: "dict[str, ServeJob]" = {}
        self._history: deque[str] = deque()
        self._queue: asyncio.Queue[ServeJob] = asyncio.Queue()
        self._pending = 0
        self._draining = False
        self._batch_task: asyncio.Task | None = None
        self._idle = asyncio.Event()
        self._idle.set()
        #: Recent job wall times, for the Retry-After estimate.
        self._recent_seconds: deque[float] = deque(maxlen=32)

        self.counters: dict[str, int] = {
            "serve.requests": 0,
            "serve.deduplicated": 0,
            "serve.rejected": 0,
            "serve.completed": 0,
            "serve.failed": 0,
            "serve.cache_hits": 0,
            "serve.batches": 0,
            "serve.cells_executed": 0,
            "serve.jobs_recovered": 0,
        }

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Start the batching loop (call from the server's event loop).

        Before the first batch runs, any journaled-but-unfinished jobs
        left behind by a crashed predecessor are re-admitted — the
        restarted shard picks the work back up instead of dropping it.
        """
        if self._batch_task is None:
            self._recover_jobs()
            self._batch_task = asyncio.create_task(self._batch_loop(),
                                                   name="serve-batcher")

    def _recover_jobs(self) -> None:
        """Re-admit journaled-but-unfinished jobs from a crashed run.

        Re-admission goes through the normal :meth:`submit` path, so the
        recovered jobs are journaled, single-flighted, and batched like
        fresh ones; a job whose result reached the shared result cache
        before the crash replays as a pure cache hit.  Clients that were
        polling the dead process's job ids get 404 and resubmit — the
        content-addressed key attaches them to the recovered leader.
        """
        if self._journal is None or not self.recover:
            return
        pending = replay_unfinished(self._journal.path)
        if not pending:
            return
        self._journal.broker_restarted(recovered=len(pending))
        for request in pending:
            try:
                self.submit(request)
            except ReproError as error:
                # A request that no longer admits (schema drift, bad
                # name after an upgrade) must not wedge the restart.
                import logging

                logging.getLogger("repro.serve").warning(
                    "could not re-admit journaled job: %s", error)
            else:
                self.counters["serve.jobs_recovered"] += 1

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Stop admitting new work; in-flight jobs keep running."""
        self._draining = True

    async def drain(self) -> None:
        """Finish every admitted job, then stop the batcher and pool."""
        self.begin_drain()
        await self._idle.wait()
        if self._batch_task is not None:
            self._batch_task.cancel()
            try:
                await self._batch_task
            except asyncio.CancelledError:
                pass
            self._batch_task = None
        if self._pool is not None:
            await asyncio.to_thread(self._pool.shutdown)
        if self._journal is not None:
            # Every accepted job is finished after the idle wait, so the
            # journal holds no recoverable state — drop it.
            self._journal.discard_clean()
        self.flush_telemetry()

    def flush_telemetry(self) -> None:
        """Persist counters + probe snapshot next to the cache, if any."""
        if self.cache_dir is None:
            return
        import json

        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self.cache_dir / "serve-stats.json"
        document = {
            "counters": dict(self.counters),
            "singleflight": {"hits": self._singleflight.hits,
                             "leaders": self._singleflight.leaders},
            "obs": obs.snapshot(),
        }
        path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    # -- admission ----------------------------------------------------------

    def submit(self, request: SimulateRequest) -> tuple[ServeJob, bool]:
        """Admit one request; returns ``(job, deduplicated)``.

        Raises:
            Draining: the server no longer admits work.
            AdmissionFull: backpressure — retry after ``.retry_after``.
            ReproError: invalid workload/prefetcher/config (HTTP 400).
        """
        if self._draining:
            raise Draining("server is draining; not admitting new work")
        faults.check("serve.admit")
        self.counters["serve.requests"] += 1

        # Resolve early so bad names and bad configs fail at admission.
        from repro.harness.registry import make_prefetcher
        from repro.workloads import get_workload

        get_workload(request.workload)
        make_prefetcher(request.prefetcher)
        config = request.resolve_config(self.base_config)
        key = request.sim_key(self.base_config)

        existing = self._singleflight.peek(key)
        if existing is not None and not existing.status.terminal:
            self.counters["serve.deduplicated"] += 1
            return existing, True

        if self._pending >= self.max_pending:
            self.counters["serve.rejected"] += 1
            raise AdmissionFull(
                f"admission queue is full ({self._pending} job(s) pending, "
                f"limit {self.max_pending})",
                retry_after=self._retry_after_estimate(),
            )

        job = ServeJob(
            job_id=uuid.uuid4().hex[:12],
            key=key,
            request=request,
            config=config,
        )
        # Re-lease under the registry lock; the earlier peek was only a
        # fast path and another leader cannot have appeared on this
        # single-threaded loop, but lease() keeps the accounting honest.
        leased, is_leader = self._singleflight.lease(key, lambda: job)
        if not is_leader:
            self.counters["serve.deduplicated"] += 1
            return leased, True
        if self._journal is not None:
            self._journal.job_accepted(job.job_id, key, request)
        self._jobs[job.job_id] = job
        self._remember_history(job.job_id)
        self._pending += 1
        self._idle.clear()
        self._queue.put_nowait(job)
        self._emit(job, {"event": "queued", "job_id": job.job_id,
                         "key": job.key})
        self._publish_gauges()
        return job, False

    def job(self, job_id: str) -> ServeJob:
        """Look one job up by id."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJob(f"no job {job_id!r}") from None

    def _remember_history(self, job_id: str) -> None:
        self._history.append(job_id)
        while len(self._history) > JOB_HISTORY_LIMIT:
            stale_id = self._history.popleft()
            stale = self._jobs.get(stale_id)
            if stale is not None and stale.status.terminal:
                del self._jobs[stale_id]
            elif stale is not None:
                # Never evict a live job; push it back and stop.
                self._history.appendleft(stale_id)
                break

    def _retry_after_estimate(self) -> float:
        """Seconds a client should wait before retrying a 429.

        With wall-time samples, the estimate is mean job time times the
        queue depth in worker-waves.  On a cold start (queue filled
        before the first job ever finished) there is no sample basis, so
        a conservative per-cell default stands in — still scaled by the
        backlog, never the meaningless flat guess an empty deque used to
        produce.  Either way the result is clamped to
        [:data:`RETRY_AFTER_FLOOR`, :data:`RETRY_AFTER_CAP`] so clients
        neither hot-spin nor give up for minutes on a transient spike.
        """
        if self._recent_seconds:
            per_job = sum(self._recent_seconds) / len(self._recent_seconds)
        else:
            per_job = COLD_START_CELL_SECONDS
        waves = max(1.0, self._pending / max(1, self.workers))
        estimate = round(per_job * waves, 1)
        return min(RETRY_AFTER_CAP, max(RETRY_AFTER_FLOOR, estimate))

    # -- metrics ------------------------------------------------------------

    def metrics(self) -> dict[str, dict[str, float]]:
        """Counters + gauges for the ``/metrics`` endpoint."""
        counters = dict(self.counters)
        counters["serve.singleflight_hits"] = self._singleflight.hits
        counters["serve.singleflight_leaders"] = self._singleflight.leaders
        gauges = {
            "serve.pending_jobs": float(self._pending),
            "serve.queue_depth": float(self._queue.qsize()),
            "serve.draining": 1.0 if self._draining else 0.0,
            "serve.max_pending": float(self.max_pending),
            "serve.workers": float(self.workers),
        }
        return {"counters": counters, "gauges": gauges}

    def _publish_gauges(self) -> None:
        if obs.enabled():
            obs.set_gauge("serve.pending_jobs", self._pending)
            obs.set_gauge("serve.queue_depth", self._queue.qsize())

    # -- events -------------------------------------------------------------

    def _emit(self, job: ServeJob, event: dict[str, Any]) -> None:
        event = dict(event)
        event.setdefault("status", job.status.value)
        job.events.append(event)
        for queue in list(job.subscribers):
            queue.put_nowait(event)

    def subscribe(self, job: ServeJob) -> asyncio.Queue:
        """Attach one SSE reader; past events must be replayed by the
        caller from ``job.events`` before reading the queue."""
        queue: asyncio.Queue = asyncio.Queue()
        job.subscribers.append(queue)
        return queue

    def unsubscribe(self, job: ServeJob, queue: asyncio.Queue) -> None:
        try:
            job.subscribers.remove(queue)
        except ValueError:
            pass

    # -- batching + execution ----------------------------------------------

    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            batch = [job]
            deadline = loop.time() + self.batch_window
            while len(batch) < self.batch_max:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining))
                except asyncio.TimeoutError:
                    break
            for group in self._group_compatible(batch):
                try:
                    await self._execute_batch(group)
                except Exception as error:  # defensive: never kill the loop
                    for failed in group:
                        if not failed.status.terminal:
                            self._finish(failed, error=str(error))
            self._publish_gauges()

    @staticmethod
    def _group_key(job: ServeJob) -> str:
        request = job.request
        return stable_hash("serve-group", request.scale,
                           request.budget_fraction, request.seed, job.config)

    def _group_compatible(self,
                          batch: list[ServeJob]) -> list[list[ServeJob]]:
        """Split one batch into groups that can share a GridPlan."""
        groups: dict[str, list[ServeJob]] = {}
        for job in batch:
            groups.setdefault(self._group_key(job), []).append(job)
        return list(groups.values())

    async def _execute_batch(self, group: list[ServeJob]) -> None:
        loop = asyncio.get_running_loop()
        request = group[0].request
        config = group[0].config
        for job in group:
            job.status = JobStatus.RUNNING
            if self._cache is not None:
                job.cache_hit = self._cache.contains(job.key)
            self._emit(job, {"event": "running",
                             "batch_size": len(group)})

        plan = GridPlan(
            [job.cell for job in group],
            request.scale,
            request.budget_fraction,
            request.seed,
            config,
        )
        options = ExecOptions(
            jobs=self.workers,
            timeout=self.task_timeout,
            max_retries=self.max_retries,
        )

        by_cell = {job.cell: job for job in group}

        def progress(workload: str, prefetcher: str) -> None:
            # Called from the executor thread; hop back onto the loop.
            job = by_cell.get((workload, prefetcher))
            if job is not None:
                loop.call_soon_threadsafe(
                    self._emit, job, {"event": "cell-finished"})

        trace_provider = (self._trace_provider(request, config)
                          if self.workers <= 1 else None)
        self.counters["serve.batches"] += 1
        results, telemetry = await asyncio.to_thread(
            execute_grid,
            plan,
            options=options,
            cache=self._cache,
            trace_dir=self.cache_dir,
            trace_provider=trace_provider,
            progress=progress,
            pool=self._pool,
        )

        self.counters["serve.cells_executed"] += telemetry.sims_run
        self.counters["serve.cache_hits"] += telemetry.cache_hits
        quarantined = {entry["task"]: entry["reason"]
                       for entry in telemetry.quarantined}
        for job in group:
            result = results.get(job.cell)
            if result is not None:
                self._finish(job, result=result)
            else:
                reason = quarantined.get(
                    f"sim:{job.request.workload}:{job.request.prefetcher}",
                    "cell did not produce a result",
                )
                self._finish(job, error=reason)

    def _trace_provider(self, request: SimulateRequest, config: SimConfig):
        """A GridRunner-backed trace source for the in-process path.

        Reuses the runner module's bounded trace LRU and the on-disk
        trace cache, so a long-lived single-worker server amortizes
        trace construction across requests instead of rebuilding per
        batch.
        """
        from repro.harness.runner import GridRunner

        runner = GridRunner(
            config=config,
            scale=request.scale,
            budget_fraction=request.budget_fraction,
            seed=request.seed,
            cache_dir=self.cache_dir,
            jobs=1,
            result_cache=False,
        )
        return runner.trace

    def _finish(self, job: ServeJob, result: SimResult | None = None,
                error: str | None = None) -> None:
        # Chaos site: the canonical kill-shard fault fires here, after
        # the result reached the shared cache but *before* the terminal
        # transition is journaled — the crashed job replays as
        # unfinished and recovers as a pure cache hit.
        faults.check("serve.job-finished")
        job.wall_seconds = time.monotonic() - job.submitted_monotonic
        self._recent_seconds.append(job.wall_seconds)
        if result is not None:
            job.result = result
            job.status = JobStatus.DONE
            self.counters["serve.completed"] += 1
        else:
            job.error = error or "unknown failure"
            job.status = JobStatus.FAILED
            self.counters["serve.failed"] += 1
        if self._journal is not None:
            self._journal.job_finished(job.job_id, job.key,
                                       job.status.value)
        self._singleflight.release(job.key)
        self._pending = max(0, self._pending - 1)
        if self._pending == 0:
            self._idle.set()
        self._emit(job, {"event": "terminal",
                         "wall_seconds": job.wall_seconds,
                         "error": job.error})
        job.done.set()
        if obs.enabled():
            obs.observe("serve.job_seconds", job.wall_seconds)
        self._publish_gauges()
