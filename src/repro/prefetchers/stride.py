"""PC-indexed stride prefetcher (reference prediction table).

Implements the classic RPT of Fu, Patel & Janssens [8] / Chen & Baer: a
fully-associative table keyed by the PC of the memory instruction, each
entry holding the last *byte address* touched, the current stride, and a
two-bit confidence state machine.  Following Table II, the table holds
an "unrealistic" 256 concurrent streams so the stride baseline is as
strong as possible.

Strides are computed at word granularity, as in the original designs.
This matters for the comparison: a unit-stride loop has a 4-8 byte
stride, so ``degree`` strides ahead usually lands in the *same* cache
line and prefetches nothing new — the RPT only shines on large-stride
streams.  That is exactly the behaviour the paper's stride baseline
exhibits (strong on stencil-like column walks, weak on streaming code).

State machine (per the original RPT):

* ``INITIAL`` — first stride observed; record it, no prediction.
* ``TRANSIENT`` — the stride changed; record the new one, no prediction.
* ``STEADY`` — the stride repeated; predict ``degree`` strides ahead.
* ``NO_PRED`` — two consecutive stride changes; stay silent until the
  stride stabilizes again.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.common.constants import LINE_SHIFT
from repro.common.errors import ConfigError
from repro.prefetchers.base import DemandInfo, Prefetcher
from repro.prefetchers.storage import stride_storage

_INITIAL = 0
_STEADY = 1
_TRANSIENT = 2
_NO_PRED = 3


@dataclass(frozen=True)
class StrideConfig:
    """Geometry of the stride prefetcher (Table II values as defaults).

    Attributes:
        table_entries: RPT capacity (fully associative, LRU).
        degree: prefetch distance in strides on a steady prediction.
        pc_bits / stride_bits: field widths for storage accounting.
    """

    table_entries: int = 256
    degree: int = 2
    pc_bits: int = 48
    stride_bits: int = 12

    def __post_init__(self) -> None:
        if self.table_entries <= 0 or self.degree <= 0:
            raise ConfigError("stride: table entries and degree must be positive")


class _RptEntry:
    __slots__ = ("last_address", "stride", "state")

    def __init__(self, last_address: int) -> None:
        self.last_address = last_address
        self.stride = 0
        self.state = _INITIAL


class StridePrefetcher(Prefetcher):
    """Reference prediction table stride prefetcher."""

    name = "stride"

    def __init__(self, config: StrideConfig | None = None) -> None:
        self.config = config or StrideConfig()
        self._table: OrderedDict[int, _RptEntry] = OrderedDict()

    def on_access(self, info: DemandInfo) -> list[int]:
        table = self._table
        entry = table.get(info.pc)
        if entry is None:
            if len(table) >= self.config.table_entries:
                table.popitem(last=False)
            table[info.pc] = _RptEntry(info.address)
            return []
        table.move_to_end(info.pc)

        new_stride = info.address - entry.last_address
        entry.last_address = info.address
        matched = new_stride == entry.stride

        if entry.state == _INITIAL:
            if matched:
                entry.state = _STEADY
            else:
                entry.stride = new_stride
                entry.state = _TRANSIENT
        elif entry.state == _STEADY:
            if not matched:
                entry.state = _INITIAL
        elif entry.state == _TRANSIENT:
            if matched:
                entry.state = _STEADY
            else:
                entry.stride = new_stride
                entry.state = _NO_PRED
        else:  # _NO_PRED
            if matched:
                entry.state = _TRANSIENT
            else:
                entry.stride = new_stride

        if entry.state != _STEADY or entry.stride == 0:
            return []
        # Predict degree strides ahead; only lines that differ from the
        # demand's own line are worth fetching.
        current_line = info.line
        candidates: list[int] = []
        address = info.address
        for _ in range(self.config.degree):
            address += entry.stride
            line = address >> LINE_SHIFT
            if line != current_line and line >= 0 and line not in candidates:
                candidates.append(line)
        return candidates

    def storage_bits(self) -> int:
        return stride_storage(self.config).bits

    def reset(self) -> None:
        self._table.clear()

    # -- inspection ----------------------------------------------------------

    def entry_state(self, pc: int) -> tuple[int, int] | None:
        """(stride, state) of a table entry, for tests."""
        entry = self._table.get(pc)
        if entry is None:
            return None
        return entry.stride, entry.state
