"""Hardware prefetchers.

The comparison set of the paper's evaluation (Section VII):

* :class:`NoPrefetcher` — the no-prefetch baseline,
* :class:`StridePrefetcher` — a PC-indexed reference-prediction-table
  stride prefetcher [Fu et al., Jouppi],
* :class:`GhbPrefetcher` — Nesbit & Smith's global history buffer in both
  G/DC (global delta correlation) and PC/DC (PC-localized) flavours,
* :class:`SmsPrefetcher` — Somogyi et al.'s spatial memory streaming,

plus the CBWS prefetchers, which live in :mod:`repro.core` because they
are the paper's contribution.
"""

from repro.prefetchers.base import DemandInfo, Prefetcher
from repro.prefetchers.none import NoPrefetcher
from repro.prefetchers.stride import StrideConfig, StridePrefetcher
from repro.prefetchers.ghb import GhbConfig, GhbPrefetcher, GlobalHistoryBuffer
from repro.prefetchers.sms import SmsConfig, SmsPrefetcher
from repro.prefetchers.storage import (
    StorageEstimate,
    cbws_storage,
    ghb_gdc_storage,
    ghb_pcdc_storage,
    sms_storage,
    stride_storage,
)

__all__ = [
    "DemandInfo",
    "Prefetcher",
    "NoPrefetcher",
    "StrideConfig",
    "StridePrefetcher",
    "GhbConfig",
    "GhbPrefetcher",
    "GlobalHistoryBuffer",
    "SmsConfig",
    "SmsPrefetcher",
    "StorageEstimate",
    "stride_storage",
    "ghb_gdc_storage",
    "ghb_pcdc_storage",
    "sms_storage",
    "cbws_storage",
]
