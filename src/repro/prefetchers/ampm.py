"""Access Map Pattern Matching (Ishii, Inaba & Hiraki, JILP 2011).

An extension beyond the paper's evaluated set: Section III-A discusses
AMPM as the closest zone-based design — it "combines concentration zones
with cache line bitmaps in order to identify spatial streams and predict
future strides within zones.  Importantly, the prefetcher is not
PC-based and only targets global streaming patterns."

The implementation keeps an access-map table of recently touched,
page-sized zones; each map is a bitmap of the lines accessed in the
zone.  On every access at offset ``o``, the pattern matcher tests each
candidate stride ``d``: if ``o - d`` and ``o - 2d`` were both accessed,
the zone exhibits stride ``d`` and ``o + d`` (up to ``degree`` steps) is
prefetched.  Matching is purely spatial — exactly why, per the paper,
AMPM "first identifies patterns inside an iteration and, only if such
patterns are not found, may identify patterns across iterations".
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.common.bitops import is_power_of_two, log2_exact
from repro.common.errors import ConfigError
from repro.prefetchers.base import DemandInfo, Prefetcher
from repro.prefetchers.storage import ampm_storage


@dataclass(frozen=True)
class AmpmConfig:
    """Geometry of the AMPM prefetcher.

    Attributes:
        zone_lines: lines per concentration zone (64 = one 4 KB page).
        map_entries: access maps kept (fully associative, LRU).
        max_stride: largest stride tested by the matcher.
        degree: prefetches issued per matched stride.
        tag_bits: zone tag width, for storage accounting.
    """

    zone_lines: int = 64
    map_entries: int = 52
    max_stride: int = 16
    degree: int = 4
    tag_bits: int = 36

    def __post_init__(self) -> None:
        if not is_power_of_two(self.zone_lines):
            raise ConfigError("ampm: zone size must be a power of two")
        if self.map_entries <= 0:
            raise ConfigError("ampm: need at least one access map")
        if self.max_stride <= 0 or self.degree <= 0:
            raise ConfigError("ampm: stride range and degree must be positive")

    @property
    def storage_bits_total(self) -> int:
        """Per map: tag + accessed bitmap + prefetched bitmap."""
        return ampm_storage(self).bits


class AmpmPrefetcher(Prefetcher):
    """Access map pattern matching prefetcher."""

    name = "ampm"

    def __init__(self, config: AmpmConfig | None = None) -> None:
        self.config = config or AmpmConfig()
        self._zone_shift = log2_exact(self.config.zone_lines)
        self._offset_mask = self.config.zone_lines - 1
        # zone number -> (accessed bitmap, prefetched bitmap)
        self._maps: OrderedDict[int, list[int]] = OrderedDict()

    # -- map maintenance ------------------------------------------------------

    def _map_for(self, zone: int, create: bool) -> list[int] | None:
        entry = self._maps.get(zone)
        if entry is not None:
            self._maps.move_to_end(zone)
            return entry
        if not create:
            return None
        if len(self._maps) >= self.config.map_entries:
            self._maps.popitem(last=False)
        entry = [0, 0]
        self._maps[zone] = entry
        return entry

    def _is_accessed(self, zone: int, offset: int) -> bool:
        """Accessed-bit test with zone-boundary crossing."""
        while offset < 0:
            zone -= 1
            offset += self.config.zone_lines
        while offset >= self.config.zone_lines:
            zone += 1
            offset -= self.config.zone_lines
        entry = self._maps.get(zone)
        return bool(entry and (entry[0] >> offset) & 1)

    # -- prefetcher interface --------------------------------------------------

    def on_access(self, info: DemandInfo) -> list[int]:
        zone = info.line >> self._zone_shift
        offset = info.line & self._offset_mask
        entry = self._map_for(zone, create=True)
        entry[0] |= 1 << offset

        candidates: list[int] = []
        config = self.config
        for direction in (1, -1):
            for magnitude in range(1, config.max_stride + 1):
                stride = direction * magnitude
                if not self._is_accessed(zone, offset - stride):
                    continue
                if not self._is_accessed(zone, offset - 2 * stride):
                    continue
                base = info.line
                for step in range(1, config.degree + 1):
                    target = base + stride * step
                    if target < 0:
                        break
                    if not self._already_covered(target):
                        self._mark_prefetched(target)
                        candidates.append(target)
                break  # nearest matching stride in this direction wins
        return candidates

    def _already_covered(self, line: int) -> bool:
        entry = self._maps.get(line >> self._zone_shift)
        if entry is None:
            return False
        offset = line & self._offset_mask
        return bool(((entry[0] | entry[1]) >> offset) & 1)

    def _mark_prefetched(self, line: int) -> None:
        entry = self._map_for(line >> self._zone_shift, create=True)
        entry[1] |= 1 << (line & self._offset_mask)

    def storage_bits(self) -> int:
        return self.config.storage_bits_total

    def reset(self) -> None:
        self._maps.clear()

    # -- inspection ----------------------------------------------------------

    def accessed_bitmap(self, zone: int) -> int:
        """Accessed-line bitmap of a zone (testing helper)."""
        entry = self._maps.get(zone)
        return entry[0] if entry else 0
