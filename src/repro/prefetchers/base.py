"""Prefetcher interface.

All prefetchers observe the committed access stream (at line granularity,
annotated with hit/miss outcome) and return *candidate lines* to fetch
into L2.  The simulation engine owns issue bandwidth, duplicate
suppression, and in-flight tracking — prefetchers only predict.

Block-marker callbacks (``on_block_begin`` / ``on_block_end``) exist on
the base class so the engine can drive every prefetcher uniformly; only
the CBWS prefetchers react to them, which is precisely the paper's point:
existing prefetchers have no notion of code blocks.
"""

from __future__ import annotations


class DemandInfo:
    """One committed memory access as seen by a prefetcher.

    A ``__slots__`` class rather than a dataclass: the engine constructs
    one per committed access, millions per simulation, and the frozen-
    dataclass ``__init__`` (``object.__setattr__`` per field) dominated
    the profile.  The constructor signature, equality, and attribute set
    are unchanged from the dataclass it replaces.

    Attributes:
        pc: static instruction identifier.
        line: cache line number accessed.
        address: full byte address (word-granularity prefetchers such as
            the classic RPT compute strides on it).
        is_write: True for stores.
        l1_hit: the access hit in L1.
        l2_hit: the access hit in L2 (only meaningful when ``l1_hit`` is
            False).
    """

    __slots__ = ("pc", "line", "address", "is_write", "l1_hit", "l2_hit")

    def __init__(self, pc: int, line: int, address: int, is_write: bool,
                 l1_hit: bool, l2_hit: bool) -> None:
        self.pc = pc
        self.line = line
        self.address = address
        self.is_write = is_write
        self.l1_hit = l1_hit
        self.l2_hit = l2_hit

    @property
    def was_miss(self) -> bool:
        """True when the access missed the whole hierarchy."""
        return not self.l1_hit and not self.l2_hit

    def _key(self) -> tuple:
        return (self.pc, self.line, self.address, self.is_write,
                self.l1_hit, self.l2_hit)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DemandInfo):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (
            f"DemandInfo(pc={self.pc}, line={self.line}, "
            f"address={self.address}, is_write={self.is_write}, "
            f"l1_hit={self.l1_hit}, l2_hit={self.l2_hit})"
        )


class Prefetcher:
    """Base class; the default implementation predicts nothing."""

    #: Human-readable identifier used in reports and result tables.
    name: str = "none"

    def on_access(self, info: DemandInfo) -> list[int]:
        """Observe one committed access; return candidate lines."""
        return []

    def on_block_begin(self, block_id: int) -> None:
        """A ``BLOCK_BEGIN(id)`` marker committed."""

    def on_block_end(self, block_id: int) -> list[int]:
        """A ``BLOCK_END(id)`` marker committed; may return candidates."""
        return []

    def on_l1_eviction(self, line: int) -> None:
        """A line left the L1 (capacity eviction or back-invalidation)."""

    def storage_bits(self) -> int:
        """Hardware budget of the configuration (Table III)."""
        return 0

    def reset(self) -> None:
        """Drop all learned state."""
