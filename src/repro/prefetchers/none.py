"""The no-prefetch baseline."""

from __future__ import annotations

from repro.prefetchers.base import DemandInfo, Prefetcher


class NoPrefetcher(Prefetcher):
    """Never predicts anything; the Figure 12/14 baseline."""

    name = "no-prefetch"

    def on_access(self, info: DemandInfo) -> list[int]:
        return []

    def storage_bits(self) -> int:
        return 0
