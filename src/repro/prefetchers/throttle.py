"""Feedback-directed prefetch throttling (Srinath et al., HPCA 2007).

The paper takes its timeliness/accuracy taxonomy from this work ([30])
and notes that an "aggressive configuration ... would be too aggressive
for other program phases, where it may pollute the caches and degrade
the overall performance".  FDP is the classical answer: measure the
prefetcher's recent accuracy and scale its aggressiveness up or down.

:class:`ThrottledPrefetcher` wraps any :class:`Prefetcher` and applies
interval-based feedback:

* the engine's eviction callbacks and a small sample of issued lines let
  the wrapper estimate *accuracy* (used / issued) per interval;
* high accuracy raises the fraction of candidates passed through (up to
  all of them); low accuracy lowers it (down to ``min_quota``).

This is an extension beyond the paper's evaluated configurations; the
ablation bench uses it to show how much of the CBWS win survives under
conservative throttling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.prefetchers.base import DemandInfo, Prefetcher


@dataclass(frozen=True)
class ThrottleConfig:
    """Feedback parameters.

    Attributes:
        interval_accesses: feedback interval length, in observed demand
            accesses.
        high_accuracy / low_accuracy: thresholds on used/issued.
        quota_levels: aggressiveness ladder — the fraction of a
            prediction batch passed through at each level.
        start_level: initial ladder position.
    """

    interval_accesses: int = 2048
    high_accuracy: float = 0.75
    low_accuracy: float = 0.40
    quota_levels: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)
    start_level: int = 2

    def __post_init__(self) -> None:
        if self.interval_accesses <= 0:
            raise ConfigError("throttle: interval must be positive")
        if not self.quota_levels:
            raise ConfigError("throttle: need at least one quota level")
        if not 0 <= self.start_level < len(self.quota_levels):
            raise ConfigError("throttle: start level out of range")
        if not 0.0 <= self.low_accuracy <= self.high_accuracy <= 1.0:
            raise ConfigError("throttle: need 0 <= low <= high <= 1")
        if any(not 0.0 < q <= 1.0 for q in self.quota_levels):
            raise ConfigError("throttle: quotas must be in (0, 1]")


class ThrottledPrefetcher(Prefetcher):
    """Accuracy-feedback wrapper around any prefetcher."""

    def __init__(
        self,
        inner: Prefetcher,
        config: ThrottleConfig | None = None,
    ) -> None:
        self.inner = inner
        self.config = config or ThrottleConfig()
        self.name = f"fdp({inner.name})"
        self.level = self.config.start_level
        self._accesses_in_interval = 0
        self._issued_in_interval = 0
        self._used_in_interval = 0
        self._outstanding: set[int] = set()
        #: (interval index, accuracy, level) history for inspection.
        self.feedback_log: list[tuple[int, float, int]] = []
        self._interval_index = 0

    # -- feedback ------------------------------------------------------------

    def _filter(self, candidates: list[int]) -> list[int]:
        if not candidates:
            return candidates
        quota = self.config.quota_levels[self.level]
        keep = max(1, int(len(candidates) * quota + 1e-9))
        passed = candidates[:keep]
        self._issued_in_interval += len(passed)
        self._outstanding.update(passed)
        return passed

    def _tick(self) -> None:
        self._accesses_in_interval += 1
        if self._accesses_in_interval < self.config.interval_accesses:
            return
        issued = self._issued_in_interval
        accuracy = self._used_in_interval / issued if issued else 1.0
        if issued:
            if accuracy >= self.config.high_accuracy:
                self.level = min(
                    self.level + 1, len(self.config.quota_levels) - 1
                )
            elif accuracy < self.config.low_accuracy:
                self.level = max(self.level - 1, 0)
        self.feedback_log.append((self._interval_index, accuracy, self.level))
        self._interval_index += 1
        self._accesses_in_interval = 0
        self._issued_in_interval = 0
        self._used_in_interval = 0

    # -- prefetcher interface --------------------------------------------------

    def on_access(self, info: DemandInfo) -> list[int]:
        if info.line in self._outstanding:
            self._outstanding.discard(info.line)
            self._used_in_interval += 1
        self._tick()
        return self._filter(self.inner.on_access(info))

    def on_block_begin(self, block_id: int) -> None:
        self.inner.on_block_begin(block_id)

    def on_block_end(self, block_id: int) -> list[int]:
        return self._filter(self.inner.on_block_end(block_id))

    def on_l1_eviction(self, line: int) -> None:
        self.inner.on_l1_eviction(line)

    def storage_bits(self) -> int:
        # Counters plus a small outstanding-line CAM (modelled as 64
        # entries of 32-bit line addresses).
        return self.inner.storage_bits() + 64 * 32 + 4 * 16

    def reset(self) -> None:
        self.inner.reset()
        self.level = self.config.start_level
        self._accesses_in_interval = 0
        self._issued_in_interval = 0
        self._used_in_interval = 0
        self._outstanding.clear()
        self.feedback_log.clear()
        self._interval_index = 0
