"""Global history buffer prefetching (Nesbit & Smith, HPCA 2004).

The GHB is a circular FIFO of recent *miss* addresses.  An index table
maps a key to the most recent GHB entry created for that key, and each
entry carries a link pointer to the previous entry with the same key —
walking links recovers the per-key address history even though the buffer
itself is globally ordered.

Two flavours, selected by the key function (Table II evaluates both):

* **G/DC** (global delta correlation): a single global key; the chain is
  simply the global miss stream.
* **PC/DC** (PC-localized delta correlation): key = PC of the missing
  load/store, recovering per-instruction streams.

Prediction uses delta correlation: compute the delta stream of the chain,
take the most recent ``match_length`` deltas as the correlation key, find
its most recent earlier occurrence, and replay the deltas that followed
it (up to ``degree``).  As the paper notes when contrasting with CBWS,
this triggers only on misses and uses a static, conservative depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.common.errors import ConfigError
from repro.prefetchers.base import DemandInfo, Prefetcher
from repro.prefetchers.storage import ghb_gdc_storage, ghb_pcdc_storage

#: Sentinel key for the single global chain in G/DC mode.
_GLOBAL_KEY = -1


@dataclass(frozen=True)
class GhbConfig:
    """Geometry of the GHB prefetcher (Table II values as defaults).

    Attributes:
        mode: ``"global"`` for G/DC, ``"pc"`` for PC/DC.
        buffer_entries: GHB FIFO depth (fully associative index table of
            the same order).
        history_length: Table II "History Length" — the correlation key
            uses ``history_length - 1`` deltas (3 addresses span 2 deltas).
        degree: predicted deltas replayed per trigger.
        pc_bits / stride_bits: field widths for storage accounting.
    """

    mode: Literal["global", "pc"] = "pc"
    buffer_entries: int = 256
    history_length: int = 3
    degree: int = 3
    pc_bits: int = 48
    stride_bits: int = 12

    def __post_init__(self) -> None:
        if self.mode not in ("global", "pc"):
            raise ConfigError(f"ghb: unknown mode {self.mode!r}")
        if self.buffer_entries <= 0:
            raise ConfigError("ghb: buffer must have at least one entry")
        if self.history_length < 2:
            raise ConfigError("ghb: history length must be at least 2")
        if self.degree <= 0:
            raise ConfigError("ghb: degree must be positive")

    @property
    def match_length(self) -> int:
        """Deltas compared when searching the history."""
        return self.history_length - 1


class GlobalHistoryBuffer:
    """The circular miss-address FIFO plus per-key link pointers.

    Entries are addressed by a monotonically increasing serial number;
    an entry is still live while ``serial > newest_serial - capacity``.
    Stale link pointers (to overwritten entries) terminate chain walks,
    exactly as pointer invalidation does in the hardware structure.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigError("GHB capacity must be positive")
        self.capacity = capacity
        self._lines: list[int] = [0] * capacity
        self._links: list[int] = [-1] * capacity
        self._serials: list[int] = [-1] * capacity
        self._next_serial = 0
        self._head: dict[int, int] = {}  # key -> serial of newest entry

    def push(self, key: int, line: int) -> None:
        """Append a miss for ``key``, linking it to the key's last entry."""
        serial = self._next_serial
        slot = serial % self.capacity
        self._lines[slot] = line
        self._links[slot] = self._head.get(key, -1)
        self._serials[slot] = serial
        self._head[key] = serial
        self._next_serial = serial + 1

    def chain(self, key: int, max_length: int) -> list[int]:
        """Lines for ``key``, newest first, following live link pointers."""
        out: list[int] = []
        serial = self._head.get(key, -1)
        oldest_live = self._next_serial - self.capacity
        while serial >= 0 and serial >= oldest_live and len(out) < max_length:
            slot = serial % self.capacity
            if self._serials[slot] != serial:
                break  # entry overwritten; pointer is stale
            out.append(self._lines[slot])
            serial = self._links[slot]
        return out

    def __len__(self) -> int:
        return min(self._next_serial, self.capacity)

    def clear(self) -> None:
        """Reset to the empty state."""
        self._links = [-1] * self.capacity
        self._serials = [-1] * self.capacity
        self._next_serial = 0
        self._head.clear()


class GhbPrefetcher(Prefetcher):
    """GHB G/DC or PC/DC, selected by :attr:`GhbConfig.mode`."""

    def __init__(self, config: GhbConfig | None = None) -> None:
        self.config = config or GhbConfig()
        self.name = "ghb-g/dc" if self.config.mode == "global" else "ghb-pc/dc"
        self.buffer = GlobalHistoryBuffer(self.config.buffer_entries)

    def on_access(self, info: DemandInfo) -> list[int]:
        if info.l1_hit:
            return []  # the GHB records cache misses only
        key = _GLOBAL_KEY if self.config.mode == "global" else info.pc
        self.buffer.push(key, info.line)
        return self._predict(key)

    def _predict(self, key: int) -> list[int]:
        config = self.config
        newest_first = self.buffer.chain(key, config.buffer_entries)
        if len(newest_first) < config.match_length + 2:
            return []
        # Time-ascending addresses and their delta stream.
        addresses = newest_first[::-1]
        deltas = [
            addresses[i + 1] - addresses[i] for i in range(len(addresses) - 1)
        ]
        match = deltas[-config.match_length :]
        # Find the most recent earlier occurrence of the match window
        # (the canonical delta-correlation walk).  Only the deltas
        # between the match and the head are replayed, so a constant
        # stream yields a short replay — the "static, conservative
        # configuration" the paper contrasts CBWS against.
        search_end = len(deltas) - config.match_length - 1
        for position in range(search_end, -1, -1):
            if deltas[position : position + config.match_length] == match:
                predicted = deltas[
                    position + config.match_length :
                    position + config.match_length + config.degree
                ]
                base = addresses[-1]
                candidates = []
                for delta in predicted:
                    base += delta
                    candidates.append(base)
                return candidates
        return []

    def storage_bits(self) -> int:
        if self.config.mode == "global":
            return ghb_gdc_storage(self.config).bits
        return ghb_pcdc_storage(self.config).bits

    def reset(self) -> None:
        self.buffer.clear()
