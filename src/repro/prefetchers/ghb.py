"""Global history buffer prefetching (Nesbit & Smith, HPCA 2004).

The GHB is a circular FIFO of recent *miss* addresses.  An index table
maps a key to the most recent GHB entry created for that key, and each
entry carries a link pointer to the previous entry with the same key —
walking links recovers the per-key address history even though the buffer
itself is globally ordered.

Two flavours, selected by the key function (Table II evaluates both):

* **G/DC** (global delta correlation): a single global key; the chain is
  simply the global miss stream.
* **PC/DC** (PC-localized delta correlation): key = PC of the missing
  load/store, recovering per-instruction streams.

Prediction uses delta correlation: compute the delta stream of the chain,
take the most recent ``match_length`` deltas as the correlation key, find
its most recent earlier occurrence, and replay the deltas that followed
it (up to ``degree``).  As the paper notes when contrasting with CBWS,
this triggers only on misses and uses a static, conservative depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.common.errors import ConfigError
from repro.prefetchers.base import DemandInfo, Prefetcher
from repro.prefetchers.storage import ghb_gdc_storage, ghb_pcdc_storage

#: Sentinel key for the single global chain in G/DC mode.
_GLOBAL_KEY = -1


@dataclass(frozen=True)
class GhbConfig:
    """Geometry of the GHB prefetcher (Table II values as defaults).

    Attributes:
        mode: ``"global"`` for G/DC, ``"pc"`` for PC/DC.
        buffer_entries: GHB FIFO depth (fully associative index table of
            the same order).
        history_length: Table II "History Length" — the correlation key
            uses ``history_length - 1`` deltas (3 addresses span 2 deltas).
        degree: predicted deltas replayed per trigger.
        pc_bits / stride_bits: field widths for storage accounting.
    """

    mode: Literal["global", "pc"] = "pc"
    buffer_entries: int = 256
    history_length: int = 3
    degree: int = 3
    pc_bits: int = 48
    stride_bits: int = 12

    def __post_init__(self) -> None:
        if self.mode not in ("global", "pc"):
            raise ConfigError(f"ghb: unknown mode {self.mode!r}")
        if self.buffer_entries <= 0:
            raise ConfigError("ghb: buffer must have at least one entry")
        if self.history_length < 2:
            raise ConfigError("ghb: history length must be at least 2")
        if self.degree <= 0:
            raise ConfigError("ghb: degree must be positive")

    @property
    def match_length(self) -> int:
        """Deltas compared when searching the history."""
        return self.history_length - 1


class GlobalHistoryBuffer:
    """The circular miss-address FIFO plus per-key link pointers.

    Entries are addressed by a monotonically increasing serial number;
    an entry is still live while ``serial > newest_serial - capacity``.
    Stale link pointers (to overwritten entries) terminate chain walks,
    exactly as pointer invalidation does in the hardware structure.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigError("GHB capacity must be positive")
        self.capacity = capacity
        self._lines: list[int] = [0] * capacity
        self._links: list[int] = [-1] * capacity
        self._serials: list[int] = [-1] * capacity
        self._next_serial = 0
        self._head: dict[int, int] = {}  # key -> serial of newest entry

    def push(self, key: int, line: int) -> None:
        """Append a miss for ``key``, linking it to the key's last entry."""
        serial = self._next_serial
        slot = serial % self.capacity
        self._lines[slot] = line
        self._links[slot] = self._head.get(key, -1)
        self._serials[slot] = serial
        self._head[key] = serial
        self._next_serial = serial + 1

    def chain(self, key: int, max_length: int) -> list[int]:
        """Lines for ``key``, newest first, following live link pointers."""
        out: list[int] = []
        serial = self._head.get(key, -1)
        oldest_live = self._next_serial - self.capacity
        while serial >= 0 and serial >= oldest_live and len(out) < max_length:
            slot = serial % self.capacity
            if self._serials[slot] != serial:
                break  # entry overwritten; pointer is stale
            out.append(self._lines[slot])
            serial = self._links[slot]
        return out

    def __len__(self) -> int:
        return min(self._next_serial, self.capacity)

    def clear(self) -> None:
        """Reset to the empty state."""
        self._links = [-1] * self.capacity
        self._serials = [-1] * self.capacity
        self._next_serial = 0
        self._head.clear()


class _KeyHistory:
    """Incremental per-key delta-correlation state (see
    :meth:`GhbPrefetcher._predict_incremental`).

    ``serials``/``addresses``/``deltas`` mirror the key's full push
    history; entries are addressed by *absolute* index (``offset`` maps
    absolute to physical after pruning).  ``windows`` maps each
    ``match_length``-delta window tuple to the largest absolute start
    position at which it has occurred while live.  ``live_start`` is the
    absolute index of the oldest address still resident in the GHB.
    """

    __slots__ = ("serials", "addresses", "deltas", "windows", "offset", "live_start")

    def __init__(self) -> None:
        self.serials: list[int] = []
        self.addresses: list[int] = []
        self.deltas: list[int] = []
        self.windows: dict[tuple[int, ...], int] = {}
        self.offset = 0
        self.live_start = 0


class GhbPrefetcher(Prefetcher):
    """GHB G/DC or PC/DC, selected by :attr:`GhbConfig.mode`."""

    def __init__(self, config: GhbConfig | None = None) -> None:
        self.config = config or GhbConfig()
        self.name = "ghb-g/dc" if self.config.mode == "global" else "ghb-pc/dc"
        self.buffer = GlobalHistoryBuffer(self.config.buffer_entries)
        self._histories: dict[int, _KeyHistory] = {}
        self._match_length = self.config.match_length
        self._degree = self.config.degree

    def on_access(self, info: DemandInfo) -> list[int]:
        if info.l1_hit:
            return []  # the GHB records cache misses only
        key = _GLOBAL_KEY if self.config.mode == "global" else info.pc
        self.buffer.push(key, info.line)
        return self._predict_incremental(key, info.line)

    def _predict_incremental(self, key: int, line: int) -> list[int]:
        """O(match_length) replacement for the :meth:`_predict` walk.

        The naive walk re-derives the key's chain and linearly scans its
        delta stream on every miss — O(capacity) per trigger.  This
        method keeps the chain materialized incrementally and finds "the
        most recent earlier occurrence of the match window" with one
        dict lookup.  Correctness argument (pinned by the equivalence
        test against :meth:`_predict`):

        * A delta at absolute position ``p`` is in the naive live chain
          iff the address opening it is still GHB-resident, i.e. iff
          ``p >= live_start`` — chain walks stop at the first dead link,
          and serials decrease along the chain, so liveness is a suffix.
        * ``windows`` stores, per window tuple, the *maximum* start
          position inserted so far; positions only grow, so a stored
          maximum below ``live_start`` proves no live occurrence exists,
          while one at or above it is exactly the naive scan's hit
          (newest-first scan == maximum live position).
        * Windows are inserted after the query, so the stored maximum is
          always at most ``n - match_length - 1`` — the naive
          ``search_end`` that excludes the match window itself.
        """
        buffer = self.buffer
        hist = self._histories.get(key)
        if hist is None:
            hist = _KeyHistory()
            self._histories[key] = hist
        serials = hist.serials
        addresses = hist.addresses
        deltas = hist.deltas
        offset = hist.offset
        if addresses:
            deltas.append(line - addresses[-1])
        serials.append(buffer._next_serial - 1)
        addresses.append(line)
        n = offset + len(addresses) - 1  # absolute index of this address

        # Advance the liveness frontier: the newest entry is always
        # live, so the walk terminates.
        oldest_live = buffer._next_serial - buffer.capacity
        live_start = hist.live_start
        while serials[live_start - offset] < oldest_live:
            live_start += 1
        hist.live_start = live_start

        ml = self._match_length
        match_start = n - ml  # absolute start of the just-completed window
        result: list[int] = []
        if n + 1 - live_start >= ml + 2:
            match = tuple(deltas[match_start - offset:])
            position = hist.windows.get(match, -1)
            if position >= live_start:
                start = position + ml - offset
                base = line
                for delta in deltas[start : start + self._degree]:
                    base += delta
                    result.append(base)
        if match_start >= live_start:
            hist.windows[tuple(deltas[match_start - offset:])] = match_start

        # Prune dead history so per-key state stays O(capacity).
        if len(addresses) > 2 * buffer.capacity:
            cut = live_start - offset
            if cut > 0:
                del addresses[:cut]
                del serials[:cut]
                del deltas[:cut]
                hist.offset = live_start
                windows = hist.windows
                for window in [w for w, p in windows.items() if p < live_start]:
                    del windows[window]
        return result

    def _predict(self, key: int) -> list[int]:
        """Reference delta-correlation walk (O(capacity) per trigger).

        Kept as the readable specification; :meth:`_predict_incremental`
        must produce identical candidates (pinned by tests).
        """
        config = self.config
        newest_first = self.buffer.chain(key, config.buffer_entries)
        if len(newest_first) < config.match_length + 2:
            return []
        # Time-ascending addresses and their delta stream.
        addresses = newest_first[::-1]
        deltas = [
            addresses[i + 1] - addresses[i] for i in range(len(addresses) - 1)
        ]
        match = deltas[-config.match_length :]
        # Find the most recent earlier occurrence of the match window
        # (the canonical delta-correlation walk).  Only the deltas
        # between the match and the head are replayed, so a constant
        # stream yields a short replay — the "static, conservative
        # configuration" the paper contrasts CBWS against.
        search_end = len(deltas) - config.match_length - 1
        for position in range(search_end, -1, -1):
            if deltas[position : position + config.match_length] == match:
                predicted = deltas[
                    position + config.match_length :
                    position + config.match_length + config.degree
                ]
                base = addresses[-1]
                candidates = []
                for delta in predicted:
                    base += delta
                    candidates.append(base)
                return candidates
        return []

    def storage_bits(self) -> int:
        if self.config.mode == "global":
            return ghb_gdc_storage(self.config).bits
        return ghb_pcdc_storage(self.config).bits

    def reset(self) -> None:
        self.buffer.clear()
        self._histories.clear()
