"""Markov prefetcher (Joseph & Grunwald, ISCA 1997).

Cited by the paper's related work ([13]): "a probabilistic model that
correlates consecutive pairs [of] memory addresses".  The prefetcher
keeps a correlation table mapping a miss line to the lines that most
recently followed it in the miss stream, and prefetches those successors
on the next miss to that line.

Included as a second extension baseline: correlation prefetching covers
*repeating* irregular sequences (the pointer chase of mcf repeats its
permutation cycle) that no stride/delta scheme can, at the cost of a
correlation table that must approach the working set's size — the
contrast the paper draws when arguing that "associating address sets
with code blocks improves accuracy and enables a longer prefetching
window".
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.prefetchers.base import DemandInfo, Prefetcher
from repro.prefetchers.storage import markov_storage


@dataclass(frozen=True)
class MarkovConfig:
    """Geometry of the Markov prefetcher.

    Attributes:
        table_entries: correlation table capacity (fully assoc., LRU).
            The original design used megabyte-scale tables; the default
            here (16K entries = 192 KB) preserves that character.
        successors: successor slots per entry (the original uses 2-4).
        line_bits: stored line-address width, for storage accounting.
    """

    table_entries: int = 16384
    successors: int = 2
    line_bits: int = 32

    def __post_init__(self) -> None:
        if self.table_entries <= 0:
            raise ConfigError("markov: table needs at least one entry")
        if self.successors <= 0:
            raise ConfigError("markov: need at least one successor slot")


class MarkovPrefetcher(Prefetcher):
    """First-order miss-address correlation prefetcher."""

    name = "markov"

    def __init__(self, config: MarkovConfig | None = None) -> None:
        self.config = config or MarkovConfig()
        # line -> most-recent-first successor list.
        self._table: OrderedDict[int, list[int]] = OrderedDict()
        self._last_miss: int | None = None

    def on_access(self, info: DemandInfo) -> list[int]:
        if info.l1_hit:
            return []  # the Markov model correlates the miss stream
        line = info.line

        # Train: record `line` as the successor of the previous miss.
        previous = self._last_miss
        if previous is not None and previous != line:
            successors = self._table.get(previous)
            if successors is None:
                if len(self._table) >= self.config.table_entries:
                    self._table.popitem(last=False)
                self._table[previous] = [line]
            else:
                if line in successors:
                    successors.remove(line)
                successors.insert(0, line)
                del successors[self.config.successors :]
                self._table.move_to_end(previous)
        self._last_miss = line

        # Predict: the recorded successors of this line.
        successors = self._table.get(line)
        if successors is None:
            return []
        self._table.move_to_end(line)
        return list(successors)

    def storage_bits(self) -> int:
        return markov_storage(self.config).bits

    def reset(self) -> None:
        self._table.clear()
        self._last_miss = None

    # -- inspection ----------------------------------------------------------

    def successors_of(self, line: int) -> list[int]:
        """Recorded successors (most recent first), for tests."""
        return list(self._table.get(line, []))
