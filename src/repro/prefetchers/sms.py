"""Spatial memory streaming (Somogyi et al., ISCA 2006).

SMS learns which lines of a fixed-size spatial *region* a code region
touches, keyed by the trigger — the (PC, region offset) of the first
access to the region in a *generation*.  A generation starts at that
first access and ends when a line of the region leaves the L1 (eviction
or invalidation); the accumulated bit pattern is then stored in the
pattern history table (PHT).  The next time the same trigger fires, the
stored pattern is streamed: every set bit is prefetched at once.

Hardware structures (Table II geometry):

* **Filter table** (32 entries): regions touched exactly once so far;
  single-access regions never pollute the PHT.
* **Accumulation table** (AGT, 32 entries): active generations with ≥2
  accesses, accumulating the line bitmap.
* **Pattern history table** (512 entries, LRU): trigger → bit pattern.

The paper's critique (Section II-A) is structural: the region size is a
fixed design parameter, so access patterns that span input-dependent
ranges (the 3-D stencil) straddle region boundaries and lose coverage.
This implementation keeps that property — regions are aligned power-of-
two windows — so the critique is reproducible.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.common.bitops import is_power_of_two, log2_exact
from repro.common.constants import DEFAULT_LINE_SIZE
from repro.common.errors import ConfigError
from repro.prefetchers.base import DemandInfo, Prefetcher
from repro.prefetchers.storage import sms_storage


@dataclass(frozen=True)
class SmsConfig:
    """Geometry of the SMS prefetcher (Table II values as defaults).

    Attributes:
        region_size: spatial region size in bytes (2 KB in the paper).
        filter_entries / agt_entries / pht_entries: table capacities.
        line_size: cache line size; region_size/line_size is the pattern
            width in bits.
        pc_bits / tag_bits / offset_bits: field widths for Table III.
    """

    region_size: int = 2048
    filter_entries: int = 32
    agt_entries: int = 32
    pht_entries: int = 512
    line_size: int = DEFAULT_LINE_SIZE
    pc_bits: int = 48
    tag_bits: int = 36
    offset_bits: int = 5

    def __post_init__(self) -> None:
        if not is_power_of_two(self.region_size):
            raise ConfigError("sms: region size must be a power of two")
        if self.region_size < self.line_size:
            raise ConfigError("sms: region must span at least one line")
        for field_name in ("filter_entries", "agt_entries", "pht_entries"):
            if getattr(self, field_name) <= 0:
                raise ConfigError(f"sms: {field_name} must be positive")

    @property
    def lines_per_region(self) -> int:
        """Pattern width in bits."""
        return self.region_size // self.line_size


class _Generation:
    """One active region generation (filter or AGT resident)."""

    __slots__ = ("trigger_pc", "trigger_offset", "pattern")

    def __init__(self, trigger_pc: int, trigger_offset: int) -> None:
        self.trigger_pc = trigger_pc
        self.trigger_offset = trigger_offset
        self.pattern = 1 << trigger_offset


class SmsPrefetcher(Prefetcher):
    """Spatial memory streaming prefetcher."""

    name = "sms"

    def __init__(self, config: SmsConfig | None = None) -> None:
        self.config = config or SmsConfig()
        self._region_shift = log2_exact(self.config.lines_per_region)
        self._offset_mask = self.config.lines_per_region - 1
        # region number -> generation, for both tables (LRU ordered).
        self._filter: OrderedDict[int, _Generation] = OrderedDict()
        self._agt: OrderedDict[int, _Generation] = OrderedDict()
        # (trigger pc, trigger offset) -> line bitmap.
        self._pht: OrderedDict[tuple[int, int], int] = OrderedDict()

    # -- event handlers --------------------------------------------------------

    def on_access(self, info: DemandInfo) -> list[int]:
        region = info.line >> self._region_shift
        offset = info.line & self._offset_mask

        generation = self._agt.get(region)
        if generation is not None:
            generation.pattern |= 1 << offset
            self._agt.move_to_end(region)
            return []

        generation = self._filter.pop(region, None)
        if generation is not None:
            # Second access: promote to the accumulation table.
            generation.pattern |= 1 << offset
            self._insert_agt(region, generation)
            return []

        # Trigger access: start a generation and stream any learned pattern.
        generation = _Generation(info.pc, offset)
        if len(self._filter) >= self.config.filter_entries:
            self._filter.popitem(last=False)  # silent drop, like hardware
        self._filter[region] = generation
        return self._stream(region, info.pc, offset)

    def on_l1_eviction(self, line: int) -> None:
        """A line left L1: close the generation of its region, if active."""
        region = line >> self._region_shift
        generation = self._agt.pop(region, None)
        if generation is None:
            generation = self._filter.pop(region, None)
        if generation is not None:
            self._learn(generation)

    # -- internals --------------------------------------------------------------

    def _insert_agt(self, region: int, generation: _Generation) -> None:
        if len(self._agt) >= self.config.agt_entries:
            _, victim = self._agt.popitem(last=False)
            self._learn(victim)  # a capacity-evicted generation still trains
        self._agt[region] = generation

    def _learn(self, generation: _Generation) -> None:
        key = (generation.trigger_pc, generation.trigger_offset)
        if key in self._pht:
            self._pht.move_to_end(key)
        elif len(self._pht) >= self.config.pht_entries:
            self._pht.popitem(last=False)
        self._pht[key] = generation.pattern

    def _stream(self, region: int, pc: int, offset: int) -> list[int]:
        pattern = self._pht.get((pc, offset))
        if pattern is None:
            return []
        self._pht.move_to_end((pc, offset))
        base_line = region << self._region_shift
        trigger_line = base_line + offset
        candidates = []
        remaining = pattern
        while remaining:
            bit = (remaining & -remaining).bit_length() - 1
            remaining &= remaining - 1
            line = base_line + bit
            if line != trigger_line:  # the trigger itself is the demand
                candidates.append(line)
        return candidates

    def storage_bits(self) -> int:
        return sms_storage(self.config).bits

    def reset(self) -> None:
        self._filter.clear()
        self._agt.clear()
        self._pht.clear()

    # -- inspection ----------------------------------------------------------

    def learned_pattern(self, pc: int, offset: int) -> int | None:
        """Stored PHT pattern for a trigger, for tests."""
        return self._pht.get((pc, offset))
