"""Pangloss: a frequency-based Markov chain over in-page deltas.

After Bakhshalipour et al.'s observation that delta *frequencies* beat
delta *recency*, Pangloss (arXiv 1906.00877, DPC3 winner) models the
miss stream as a Markov chain whose states are cache-line deltas within
a page.  Each transition row keeps small saturating frequency counters;
when a counter saturates the whole row is halved (an LFU decay that
ages out stale phases), and prediction walks the chain greedily from
the current delta, issuing only transitions whose counter clears a
confidence fraction of the row total.

The exact structure reproduced here (documented because the clean-room
oracle in :mod:`repro.check.oracles` is transcribed from this spec, not
from this code):

* **Page tracker** — an LRU map ``page -> (last_offset, last_delta)``
  of :attr:`PanglossConfig.page_entries` pages.  Only L1 misses train
  or predict (the Markov model correlates the miss stream, as in the
  classic correlation prefetchers).  A zero delta (same line missed
  twice) is ignored.
* **Transition table** — an LRU map ``prev_delta -> row`` of
  :attr:`PanglossConfig.markov_rows` rows; each row holds up to
  :attr:`PanglossConfig.row_slots` ``next_delta -> count`` slots plus
  the row total.  Training bumps the observed successor.  When a bump
  would push a counter past :attr:`PanglossConfig.counter_max`, every
  counter in the row is halved (floor) first and zeroed slots are
  dropped — the LFU decay.  Inserting into a full row evicts the
  coldest slot (smallest count, ties to the smallest delta).
* **Prediction** — a greedy chain walk: starting from the just-observed
  delta, repeatedly take the row's strongest successor (largest count,
  ties to the smallest delta) provided it clears
  :attr:`PanglossConfig.confidence_percent` percent of the row total,
  step the offset by it, and emit the resulting line while it stays
  inside the page.  At most :attr:`PanglossConfig.degree` steps.
  Prediction lookups do **not** refresh row recency; only training
  does.

Everything is integer arithmetic — no floats, no randomness — so the
prefetcher is trivially deterministic across engines.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.prefetchers.base import DemandInfo, Prefetcher
from repro.prefetchers.storage import pangloss_storage


@dataclass(frozen=True)
class PanglossConfig:
    """Geometry of the Pangloss prefetcher.

    Attributes:
        lines_per_page: page size in cache lines (power of two); deltas
            and predictions never cross a page boundary.
        page_entries: page-tracker capacity (fully assoc., LRU).
        markov_rows: transition-table row capacity (fully assoc., LRU).
        row_slots: successor slots per transition row.
        counter_max: saturation ceiling of the per-slot frequency
            counters; a bump past it halves the whole row (LFU decay).
        degree: maximum chain-walk depth (candidates per access).
        confidence_percent: a successor predicts only while its counter
            is at least this percentage of the row total.
        page_tag_bits / delta_bits: stored field widths, for storage
            accounting only.
    """

    lines_per_page: int = 64
    page_entries: int = 256
    markov_rows: int = 1024
    row_slots: int = 8
    counter_max: int = 15
    degree: int = 4
    confidence_percent: int = 20
    page_tag_bits: int = 32
    delta_bits: int = 7

    def __post_init__(self) -> None:
        if self.lines_per_page < 2 or (
            self.lines_per_page & (self.lines_per_page - 1)
        ):
            raise ConfigError(
                "pangloss: lines_per_page must be a power of two >= 2, "
                f"got {self.lines_per_page}"
            )
        for name in ("page_entries", "markov_rows", "row_slots", "degree"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"pangloss: {name} must be positive")
        if self.counter_max < 1:
            raise ConfigError("pangloss: counter_max must be at least 1")
        if not 0 <= self.confidence_percent <= 100:
            raise ConfigError(
                "pangloss: confidence_percent must be in [0, 100], "
                f"got {self.confidence_percent}"
            )


class PanglossPrefetcher(Prefetcher):
    """Per-page delta Markov chain with LFU-decayed frequency rows."""

    name = "pangloss"

    def __init__(self, config: PanglossConfig | None = None) -> None:
        self.config = config or PanglossConfig()
        self._page_shift = self.config.lines_per_page.bit_length() - 1
        self._offset_mask = self.config.lines_per_page - 1
        # page -> [last_offset, last_delta]; 0 delta means "none yet".
        self._pages: OrderedDict[int, List[int]] = OrderedDict()
        # prev_delta -> [total, {next_delta: count}] (slot dict keeps
        # insertion order; recency lives in the outer OrderedDict).
        self._rows: OrderedDict[int, list] = OrderedDict()

    # -- training ------------------------------------------------------------

    def _decay_due(self, count: int) -> bool:
        """True when bumping a counter at ``count`` must decay the row.

        Split out so the fault-injection self-test can plant an
        off-by-one here without touching the training path.
        """
        return count + 1 > self.config.counter_max

    def _train(self, prev_delta: int, next_delta: int) -> None:
        row = self._rows.get(prev_delta)
        if row is None:
            if len(self._rows) >= self.config.markov_rows:
                self._rows.popitem(last=False)
            row = [0, {}]
            self._rows[prev_delta] = row
        else:
            self._rows.move_to_end(prev_delta)
        slots = row[1]
        if self._decay_due(slots.get(next_delta, 0)):
            # LFU decay: halve every counter, dropping the cold ones.
            for delta in list(slots):
                slots[delta] //= 2
                if slots[delta] == 0:
                    del slots[delta]
            row[0] = sum(slots.values())
        if next_delta not in slots and len(slots) >= self.config.row_slots:
            victim = min(slots, key=lambda delta: (slots[delta], delta))
            row[0] -= slots.pop(victim)
        slots[next_delta] = slots.get(next_delta, 0) + 1
        row[0] += 1

    # -- prediction ----------------------------------------------------------

    def _best_successor(self, delta: int) -> Optional[int]:
        """The confident strongest successor of ``delta`` (None if any)."""
        row = self._rows.get(delta)  # no recency refresh on lookups
        if row is None or row[0] <= 0:
            return None
        best: Optional[int] = None
        best_count = 0
        for successor, count in row[1].items():
            if count > best_count or (
                count == best_count and best is not None and successor < best
            ):
                best, best_count = successor, count
        if best is None:
            return None
        if best_count * 100 < row[0] * self.config.confidence_percent:
            return None
        return best

    # -- event protocol ------------------------------------------------------

    def on_access(self, info: DemandInfo) -> List[int]:
        if info.l1_hit:
            return []  # the chain correlates the miss stream
        page = info.line >> self._page_shift
        offset = info.line & self._offset_mask

        entry = self._pages.get(page)
        if entry is None:
            if len(self._pages) >= self.config.page_entries:
                self._pages.popitem(last=False)
            self._pages[page] = [offset, 0]
            return []
        self._pages.move_to_end(page)
        delta = offset - entry[0]
        if delta == 0:
            return []
        prev_delta = entry[1]
        entry[0] = offset
        entry[1] = delta
        if prev_delta != 0:
            self._train(prev_delta, delta)

        candidates: List[int] = []
        page_base = page << self._page_shift
        walk_offset = offset
        walk_delta = delta
        for _ in range(self.config.degree):
            successor = self._best_successor(walk_delta)
            if successor is None:
                break
            walk_offset += successor
            if not 0 <= walk_offset < self.config.lines_per_page:
                break
            line = page_base + walk_offset
            if line != info.line and line not in candidates:
                candidates.append(line)
            walk_delta = successor
        return candidates

    def storage_bits(self) -> int:
        return pangloss_storage(self.config).bits

    def reset(self) -> None:
        self._pages.clear()
        self._rows.clear()

    # -- inspection ----------------------------------------------------------

    def row_of(self, delta: int) -> List[Tuple[int, int]]:
        """``(next_delta, count)`` slots of one row, for tests."""
        row = self._rows.get(delta)
        if row is None:
            return []
        return list(row[1].items())
