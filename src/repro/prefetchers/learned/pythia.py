"""Pythia-style tabular online-RL prefetcher.

Pythia (arXiv 2109.12021) frames prefetching as reinforcement learning:
the state is a program feature vector, the actions are prefetch deltas
(including "don't prefetch"), and the reward arrives from the fate of
the issued prefetch — accurate-and-timely, accurate-but-late, or never
used.  This reproduction keeps the tabular core and threads the reward
signal entirely through the hook protocol the engines already provide:
the prefetcher shadow-tracks its own predictions in ``on_access`` and
classifies them by age when (or whether) a demand touches them, so no
engine changes — and no engine-specific feedback callbacks — are
needed, which is what keeps fast/reference/batch runs bit-identical.

The exact machine (the clean-room oracle in :mod:`repro.check.oracles`
is transcribed from this spec, not from this code):

* **Clock** — ``tick`` counts *decisions* (one per L1 miss); prefetch
  ages are measured in decision ticks.
* **State** — built from :attr:`PythiaConfig.feature_set`, a ``+``-
  joined subset of ``pc`` (low :attr:`PythiaConfig.pc_bits` bits),
  ``delta`` (the last :attr:`PythiaConfig.history_len` non-zero in-page
  deltas, oldest first), and ``offset`` (line offset within its page).
  Per-page last offsets live in an LRU tracker of
  :attr:`PythiaConfig.page_entries` pages.
* **Q-table** — an LRU map ``state -> float64 Q-row`` (one value per
  action, initialised to 0.0) of :attr:`PythiaConfig.q_entries` states.
  Rows evicted from the table keep receiving their pending SARSA
  updates (the ledger holds the row object), they are simply no longer
  reachable for new decisions.
* **Action selection** — epsilon-greedy over
  :attr:`PythiaConfig.actions`.  Each decision first draws
  ``index(1_000_000)`` from the named stream ``"pythia.explore"``
  (:func:`repro.common.rng.named_stream` with
  :attr:`PythiaConfig.seed`); if the draw falls below
  ``round(epsilon * 1_000_000)`` a second draw ``index(len(actions))``
  picks the action uniformly, otherwise the argmax of the Q-row wins
  (first index on ties).
* **Acting** — a non-zero action delta issues one candidate at
  ``offset + delta`` when that stays inside the page; the candidate is
  recorded in a shadow table ``line -> (decision, issue_tick)`` bounded
  to :attr:`PythiaConfig.inflight_entries` (capacity evictions and
  overwritten lines resolve the displaced decision as useless).  A zero
  delta or an out-of-page target issues nothing and resolves
  immediately with :attr:`PythiaConfig.reward_none`.
* **Reward** — on every access (hit or miss, before anything else) a
  demand touch on a shadow-tracked line pops it and resolves its
  decision: :attr:`PythiaConfig.reward_timely` when its age is at least
  :attr:`PythiaConfig.timely_age` ticks (the prefetch had lead time),
  else :attr:`PythiaConfig.reward_late`.  At each decision point,
  tracked lines older than :attr:`PythiaConfig.useless_age` are popped
  oldest-first and resolved with :attr:`PythiaConfig.reward_useless`.
* **Learning** — SARSA.  Every decision enters a ledger; decision *n*
  learns its successor pair when decision *n+1* is made.  The moment a
  ledger entry has both its reward and its successor, the update
  ``Q[s, a] += alpha * (r + gamma * Q[s', a'] - Q[s, a])`` applies (in
  float64, exactly this expression shape) and the entry leaves the
  ledger.  When one access resolves several entries, they apply in
  ledger (decision) order.

Determinism: the only stochastic site is the named stream, which both
the implementation and the oracle construct independently and drain in
the same order; float updates use one fixed expression, so Q-values
are bit-identical run-to-run and side-to-side.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Tuple

from repro.common.errors import ConfigError
from repro.common.rng import named_stream
from repro.prefetchers.base import DemandInfo, Prefetcher
from repro.prefetchers.storage import pythia_storage

#: Feature names accepted in :attr:`PythiaConfig.feature_set`.
FEATURE_NAMES = ("pc", "delta", "offset")

#: Resolution of the epsilon-greedy draw.
EPSILON_SCALE = 1_000_000


@dataclass(frozen=True)
class PythiaConfig:
    """Geometry and learning parameters of the Pythia prefetcher.

    Attributes:
        feature_set: ``+``-joined state features, drawn from ``pc``,
            ``delta``, ``offset`` (e.g. ``"pc+delta"``).
        history_len: delta-history depth inside the state.
        actions: the prefetch-delta action space; must contain 0 (the
            "don't prefetch" action).  The default is Pythia's 16-entry
            list.
        alpha / gamma / epsilon: SARSA learning rate, discount, and
            exploration rate (paper defaults).
        q_entries: Q-table capacity (fully assoc., LRU).
        page_entries: per-page last-offset tracker capacity.
        inflight_entries: shadow-tracked outstanding predictions.
        timely_age: minimum age (decision ticks) for a demand-touched
            prefetch to count as timely rather than late.
        useless_age: age past which an untouched prefetch resolves as
            useless.
        reward_timely / reward_late / reward_useless / reward_none:
            the scalar reward levels.
        lines_per_page: page size in cache lines (power of two).
        pc_bits: PC feature width.
        seed: seed of the ``"pythia.explore"`` named stream.
        tag_bits / q_value_bits: stored field widths, for storage
            accounting only.
    """

    feature_set: str = "pc+delta"
    history_len: int = 2
    actions: Tuple[int, ...] = (
        -6, -3, -1, 0, 1, 3, 4, 5, 10, 11, 12, 16, 22, 23, 30, 32,
    )
    alpha: float = 0.0065
    gamma: float = 0.556
    epsilon: float = 0.002
    q_entries: int = 4096
    page_entries: int = 64
    inflight_entries: int = 64
    timely_age: int = 12
    useless_age: int = 256
    reward_timely: int = 20
    reward_late: int = 12
    reward_useless: int = -14
    reward_none: int = -2
    lines_per_page: int = 64
    pc_bits: int = 10
    seed: int = 0
    tag_bits: int = 16
    q_value_bits: int = 16

    def __post_init__(self) -> None:
        parts = self.feature_set.split("+")
        if not parts or any(part not in FEATURE_NAMES for part in parts) \
                or len(set(parts)) != len(parts):
            raise ConfigError(
                f"pythia: feature_set must be a +-joined subset of "
                f"{'/'.join(FEATURE_NAMES)}, got {self.feature_set!r}"
            )
        if not self.actions or len(set(self.actions)) != len(self.actions):
            raise ConfigError("pythia: actions must be non-empty and unique")
        if 0 not in self.actions:
            raise ConfigError(
                "pythia: actions must include 0 (the no-prefetch action)"
            )
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigError(f"pythia: alpha must be in (0, 1], got {self.alpha}")
        if not 0.0 <= self.gamma < 1.0:
            raise ConfigError(f"pythia: gamma must be in [0, 1), got {self.gamma}")
        if not 0.0 <= self.epsilon <= 1.0:
            raise ConfigError(
                f"pythia: epsilon must be in [0, 1], got {self.epsilon}"
            )
        for name in ("history_len", "q_entries", "page_entries",
                     "inflight_entries", "timely_age", "useless_age"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"pythia: {name} must be positive")
        if self.lines_per_page < 2 or (
            self.lines_per_page & (self.lines_per_page - 1)
        ):
            raise ConfigError(
                "pythia: lines_per_page must be a power of two >= 2, "
                f"got {self.lines_per_page}"
            )


class PythiaPrefetcher(Prefetcher):
    """Tabular SARSA over prefetch deltas with shadow-tracked rewards."""

    name = "pythia"

    def __init__(self, config: PythiaConfig | None = None) -> None:
        self.config = config or PythiaConfig()
        self._features = tuple(self.config.feature_set.split("+"))
        self._page_shift = self.config.lines_per_page.bit_length() - 1
        self._offset_mask = self.config.lines_per_page - 1
        self._pc_mask = (1 << self.config.pc_bits) - 1
        self._epsilon_cut = int(round(self.config.epsilon * EPSILON_SCALE))
        self._stream = named_stream("pythia.explore", self.config.seed)
        self._tick = 0
        self._next_decision = 0
        self._history: List[int] = []
        self._pages: OrderedDict[int, int] = OrderedDict()  # page -> offset
        self._q: OrderedDict[tuple, List[float]] = OrderedDict()
        # line -> (decision id, issue tick); insertion order = issue order.
        self._inflight: OrderedDict[int, Tuple[int, int]] = OrderedDict()
        # decision id -> [row, action, reward, next_row, next_action].
        self._ledger: OrderedDict[int, list] = OrderedDict()
        self._previous_decision: int | None = None

    # -- the SARSA ledger ----------------------------------------------------

    def _maybe_apply(self, decision: int) -> None:
        entry = self._ledger.get(decision)
        if entry is None or entry[2] is None or entry[3] is None:
            return
        row, action, reward, next_row, next_action = entry
        q = row[action]
        row[action] = q + self.config.alpha * (
            reward + self.config.gamma * next_row[next_action] - q
        )
        del self._ledger[decision]

    def _resolve(self, decision: int, reward: int) -> None:
        entry = self._ledger.get(decision)
        if entry is None:
            return
        entry[2] = reward
        self._maybe_apply(decision)

    def _link_successor(self, row: List[float], action: int) -> None:
        if self._previous_decision is None:
            return
        entry = self._ledger.get(self._previous_decision)
        if entry is not None:
            entry[3] = row
            entry[4] = action
            self._maybe_apply(self._previous_decision)

    # -- event protocol ------------------------------------------------------

    def on_access(self, info: DemandInfo) -> List[int]:
        # 1. Demand feedback: a touch on a tracked line resolves it.
        record = self._inflight.pop(info.line, None)
        if record is not None:
            decision, issue_tick = record
            age = self._tick - issue_tick
            self._resolve(
                decision,
                self.config.reward_timely if age >= self.config.timely_age
                else self.config.reward_late,
            )
        if info.l1_hit:
            return []  # decisions ride the miss stream only

        # 2. Expire stale predictions, oldest first, in ledger order.
        while self._inflight:
            line, (decision, issue_tick) = next(iter(self._inflight.items()))
            if self._tick - issue_tick <= self.config.useless_age:
                break
            del self._inflight[line]
            self._resolve(decision, self.config.reward_useless)

        # 3. Build the state.
        page = info.line >> self._page_shift
        offset = info.line & self._offset_mask
        last_offset = self._pages.get(page)
        if last_offset is None:
            if len(self._pages) >= self.config.page_entries:
                self._pages.popitem(last=False)
        else:
            self._pages.move_to_end(page)
        self._pages[page] = offset
        delta = 0 if last_offset is None else offset - last_offset
        if delta != 0:
            self._history.append(delta)
            del self._history[: -self.config.history_len]
        state = self._state_key(info.pc, offset)

        # 4. Q-row lookup (LRU).
        row = self._q.get(state)
        if row is None:
            if len(self._q) >= self.config.q_entries:
                self._q.popitem(last=False)
            row = [0.0] * len(self.config.actions)
            self._q[state] = row
        else:
            self._q.move_to_end(state)

        # 5. Epsilon-greedy action selection.
        if self._stream.index(EPSILON_SCALE) < self._epsilon_cut:
            action = self._stream.index(len(self.config.actions))
        else:
            action = 0
            for index in range(1, len(row)):
                if row[index] > row[action]:
                    action = index

        # 6. Enter the ledger; the previous decision learns its successor.
        decision = self._next_decision
        self._next_decision += 1
        self._ledger[decision] = [row, action, None, None, None]
        self._link_successor(row, action)
        self._previous_decision = decision

        # 7. Act.
        candidates: List[int] = []
        action_delta = self.config.actions[action]
        target_offset = offset + action_delta
        if action_delta == 0 or not (
            0 <= target_offset < self.config.lines_per_page
        ):
            self._resolve(decision, self.config.reward_none)
        else:
            target = (page << self._page_shift) + target_offset
            displaced = self._inflight.pop(target, None)
            if displaced is not None:
                self._resolve(displaced[0], self.config.reward_useless)
            if len(self._inflight) >= self.config.inflight_entries:
                _, (old_decision, _) = self._inflight.popitem(last=False)
                self._resolve(old_decision, self.config.reward_useless)
            self._inflight[target] = (decision, self._tick)
            candidates.append(target)
        self._tick += 1
        return candidates

    def _state_key(self, pc: int, offset: int) -> tuple:
        parts: List[object] = []
        for feature in self._features:
            if feature == "pc":
                parts.append(pc & self._pc_mask)
            elif feature == "delta":
                parts.append(tuple(self._history))
            else:  # offset
                parts.append(offset)
        return tuple(parts)

    def storage_bits(self) -> int:
        return pythia_storage(self.config).bits

    def reset(self) -> None:
        self._stream = named_stream("pythia.explore", self.config.seed)
        self._tick = 0
        self._next_decision = 0
        self._history.clear()
        self._pages.clear()
        self._q.clear()
        self._inflight.clear()
        self._ledger.clear()
        self._previous_decision = None

    # -- inspection ----------------------------------------------------------

    def q_row(self, state: tuple) -> List[float]:
        """The Q-row of one state (empty list if absent), for tests."""
        return list(self._q.get(state, []))

    @property
    def outstanding(self) -> int:
        """Shadow-tracked predictions not yet resolved, for tests."""
        return len(self._inflight)
