"""Learned prefetchers (post-2014 related work).

The paper's evaluated set stops at table-driven 2014 hardware; this
package holds the two learned designs the roadmap names as the next
comparison points:

* :mod:`~repro.prefetchers.learned.pangloss` — a per-page frequency
  Markov chain over cache-line deltas with LFU-decayed transition rows
  (Pangloss, arXiv 1906.00877).
* :mod:`~repro.prefetchers.learned.pythia` — a tabular online-RL
  prefetcher with a configurable feature vector and a bounded delta
  action space (Pythia-style, arXiv 2109.12021).

Both are ordinary :class:`~repro.prefetchers.base.Prefetcher` hook
implementations: they observe the committed demand stream and return
candidate lines, so every engine (fast, reference, batch) drives them
bit-identically with zero engine changes.  All stochastic choices draw
from :func:`repro.common.rng.named_stream`, which is what lets the
clean-room oracles in :mod:`repro.check.oracles` reconstruct the exact
same draws.
"""

from repro.prefetchers.learned.pangloss import PanglossConfig, PanglossPrefetcher
from repro.prefetchers.learned.pythia import PythiaConfig, PythiaPrefetcher

__all__ = [
    "PanglossConfig",
    "PanglossPrefetcher",
    "PythiaConfig",
    "PythiaPrefetcher",
]
