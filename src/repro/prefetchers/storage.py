"""Hardware storage accounting (Table III).

Each function reproduces the paper's storage arithmetic for one
prefetcher from its configuration object.  Configs are duck-typed (any
object with the right attributes) so this module stays import-free of
the prefetcher implementations that use it.

Paper reference figures (Table III):

==========  ==========================================================
Stride      2.25 KB = (48-bit PC + 2 x 12-bit stride) x 256
GHB G/DC    2.25 KB = (6 x 12-bit strides) x 256
GHB PC/DC   3.75 KB = G/DC + 48-bit PC x 256
SMS         ~5 KB   = AGT + Filter + PHT
CBWS        < 1 KB  (Figure 8 component sizes)
==========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class StorageEstimate:
    """A storage bill of materials.

    Attributes:
        name: prefetcher label.
        bits: total storage in bits.
        breakdown: component label -> bits.
    """

    name: str
    bits: int
    breakdown: dict[str, int] = field(default_factory=dict)

    @property
    def kilobytes(self) -> float:
        """Storage in kilobytes (1 KB = 8192 bits)."""
        return self.bits / 8192.0


def stride_storage(config: Any) -> StorageEstimate:
    """(PC + 2 strides) per entry: the RPT stores the last stride and the
    observed stride under evaluation."""
    per_entry = config.pc_bits + 2 * config.stride_bits
    bits = per_entry * config.table_entries
    return StorageEstimate(
        "stride",
        bits,
        {"rpt": bits},
    )


def ghb_gdc_storage(config: Any) -> StorageEstimate:
    """(history strides + prefetch strides) per GHB entry."""
    per_entry = (config.history_length + config.degree) * config.stride_bits
    bits = per_entry * config.buffer_entries
    return StorageEstimate("ghb-g/dc", bits, {"ghb": bits})


def ghb_pcdc_storage(config: Any) -> StorageEstimate:
    """G/DC storage plus the PC index table."""
    gdc = ghb_gdc_storage(config)
    index_bits = config.pc_bits * config.buffer_entries
    return StorageEstimate(
        "ghb-pc/dc",
        gdc.bits + index_bits,
        {"ghb": gdc.bits, "pc index": index_bits},
    )


def sms_storage(config: Any) -> StorageEstimate:
    """AGT + filter + PHT, with the paper's field widths.

    Paper formula: (offset + PC + tag) x 32 for the AGT,
    (offset + PC + tag + pattern) x 32 for the filter,
    (pattern + PC + offset) x 512 for the PHT.
    """
    pattern_bits = config.lines_per_region
    agt = (config.offset_bits + config.pc_bits + config.tag_bits) * config.agt_entries
    filter_table = (
        config.offset_bits + config.pc_bits + config.tag_bits + pattern_bits
    ) * config.filter_entries
    pht = (pattern_bits + config.pc_bits + config.offset_bits) * config.pht_entries
    return StorageEstimate(
        "sms",
        agt + filter_table + pht,
        {"agt": agt, "filter": filter_table, "pht": pht},
    )


def markov_storage(config: Any) -> StorageEstimate:
    """(stored line + successor slots) per correlation-table entry."""
    per_entry = config.line_bits * (1 + config.successors)
    bits = per_entry * config.table_entries
    return StorageEstimate("markov", bits, {"correlation table": bits})


def ampm_storage(config: Any) -> StorageEstimate:
    """Per access map: zone tag + accessed bitmap + prefetched bitmap."""
    per_map = config.tag_bits + 2 * config.zone_lines
    bits = per_map * config.map_entries
    return StorageEstimate("ampm", bits, {"access maps": bits})


def pangloss_storage(config: Any) -> StorageEstimate:
    """Page tracker plus frequency-counter transition rows.

    Page tracker entries store (page tag + last offset + last delta);
    each transition row stores its delta tag plus ``row_slots`` slots of
    (delta, counter) with counters wide enough for ``counter_max``.
    """
    offset_bits = (config.lines_per_page - 1).bit_length()
    counter_bits = config.counter_max.bit_length()
    pages = config.page_entries * (
        config.page_tag_bits + offset_bits + config.delta_bits
    )
    rows = config.markov_rows * (
        config.delta_bits
        + config.row_slots * (config.delta_bits + counter_bits)
    )
    return StorageEstimate(
        "pangloss",
        pages + rows,
        {"page tracker": pages, "transition table": rows},
    )


def pythia_storage(config: Any) -> StorageEstimate:
    """Q-table plus shadow structures of the RL prefetcher.

    The Q-table stores a state tag and one fixed-point Q-value per
    action; the page tracker and the in-flight shadow table are the
    auxiliary state the reward wiring needs.
    """
    offset_bits = (config.lines_per_page - 1).bit_length()
    q_table = config.q_entries * (
        config.tag_bits + len(config.actions) * config.q_value_bits
    )
    pages = config.page_entries * (config.tag_bits + offset_bits)
    inflight = config.inflight_entries * (32 + config.tag_bits)
    return StorageEstimate(
        "pythia",
        q_table + pages + inflight,
        {"q table": q_table, "page tracker": pages, "shadow table": inflight},
    )


def cbws_storage(config: Any) -> StorageEstimate:
    """Figure 8 component sizes for the CBWS prefetcher.

    Components: the current-CBWS FIFO (32-bit line addresses), the four
    predecessor CBWSs, the incremental differential buffers (16-bit
    strides), the history shift registers (3-deep x 12-bit hashes), the
    16-entry differential history table (16-bit tag + stored vector),
    and the predicted-differentials buffer.
    """
    vector = config.max_vector_members
    current_cbws = vector * config.line_addr_bits
    last_cbws = config.max_step * vector * config.line_addr_bits
    current_diffs = config.max_step * vector * config.stride_bits
    shift_registers = config.max_step * config.history_depth * config.hash_bits
    table = config.table_entries * (
        config.tag_bits + vector * config.stride_bits
    )
    predicted = config.max_step * vector * config.stride_bits
    total = (
        current_cbws
        + last_cbws
        + current_diffs
        + shift_registers
        + table
        + predicted
    )
    return StorageEstimate(
        "cbws",
        total,
        {
            "current cbws": current_cbws,
            "last cbws": last_cbws,
            "current differentials": current_diffs,
            "history shift registers": shift_registers,
            "differential history table": table,
            "predicted differentials": predicted,
        },
    )
