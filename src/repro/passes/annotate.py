"""Tight innermost-loop annotation pass.

This is the software half of the CBWS scheme (Section IV-A): a compiler
pass walks the loop structure, selects tight innermost loops, and gives
each one a unique static identifier.  At run time the interpreter brackets
every iteration of an annotated loop with ``BLOCK_BEGIN(id)`` /
``BLOCK_END(id)`` events — the two new ISA instructions of the paper.

Selection criteria, mirroring the paper's notion of a *tight* loop:

* the loop is innermost (contains no nested loop);
* its body contains at least one memory operation (a loop that touches no
  memory gains nothing from prefetch tracking);
* its body has at most ``max_static_memory_ops`` static memory
  instructions — blocks larger than the 16-line CBWS buffer cannot be
  captured anyway, so the compiler declines enormous bodies up front;
* the loop is not marked ``no_block`` (the escape hatch that models code
  the real pass skips, e.g. loops containing calls).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.nodes import For, Kernel, While
from repro.ir.validate import count_memory_ops, loop_contains_loop, iter_statements

#: Default ceiling on static memory operations for a "tight" loop body.
#: Chosen to comfortably exceed the 16-entry CBWS buffer while rejecting
#: flattened mega-loops.
DEFAULT_MAX_STATIC_MEMORY_OPS = 32


@dataclass(frozen=True)
class AnnotatedLoop:
    """One loop the pass tagged.

    Attributes:
        block_id: the static identifier assigned to the loop.
        loop_kind: ``"for"`` or ``"while"``.
        static_memory_ops: memory instructions in the loop body.
    """

    block_id: int
    loop_kind: str
    static_memory_ops: int


@dataclass(frozen=True)
class SkippedLoop:
    """One innermost loop the pass declined to tag, and why."""

    loop_kind: str
    reason: str


@dataclass
class AnnotationReport:
    """Outcome of running the pass on one kernel."""

    kernel_name: str
    annotated: list[AnnotatedLoop] = field(default_factory=list)
    skipped: list[SkippedLoop] = field(default_factory=list)

    @property
    def block_count(self) -> int:
        """Number of static code blocks created."""
        return len(self.annotated)


def clear_annotations(kernel: Kernel) -> None:
    """Remove all block ids from a kernel (pass is then re-runnable)."""
    for statement in iter_statements(kernel.body):
        if isinstance(statement, (For, While)):
            statement.block_id = None


def annotate_tight_loops(
    kernel: Kernel,
    max_static_memory_ops: int = DEFAULT_MAX_STATIC_MEMORY_OPS,
    first_block_id: int = 0,
) -> AnnotationReport:
    """Tag every tight innermost loop of ``kernel`` with a static block id.

    The pass is idempotent: previous annotations are cleared before ids
    are assigned, so re-running produces identical ids.

    Args:
        kernel: kernel to annotate (mutated in place).
        max_static_memory_ops: tightness ceiling; bodies with more static
            memory instructions are skipped.
        first_block_id: id assigned to the first annotated loop.  Distinct
            kernels can be given disjoint id ranges when traces are merged.

    Returns:
        A report listing annotated and skipped loops in program order.
    """
    clear_annotations(kernel)
    report = AnnotationReport(kernel_name=kernel.name)
    next_id = first_block_id
    for statement in iter_statements(kernel.body):
        if not isinstance(statement, (For, While)):
            continue
        kind = "for" if isinstance(statement, For) else "while"
        if loop_contains_loop(statement):
            continue  # not innermost; never a candidate
        if statement.no_block:
            report.skipped.append(SkippedLoop(kind, "no_block pragma"))
            continue
        memory_ops = count_memory_ops(statement.body)
        if memory_ops == 0:
            report.skipped.append(SkippedLoop(kind, "no memory operations"))
            continue
        if memory_ops > max_static_memory_ops:
            report.skipped.append(
                SkippedLoop(
                    kind,
                    f"{memory_ops} static memory ops exceed the "
                    f"tightness ceiling of {max_static_memory_ops}",
                )
            )
            continue
        statement.block_id = next_id
        report.annotated.append(AnnotatedLoop(next_id, kind, memory_ops))
        next_id += 1
    return report
