"""Compiler passes over the kernel IR.

These stand in for the paper's LLVM work:

* :mod:`repro.passes.annotate` is the dedicated pass that finds tight
  innermost loops and tags them with static block ids (the
  ``BLOCK_BEGIN``/``BLOCK_END`` instrumentation of Section IV-A);
* :mod:`repro.passes.loopstats` measures the fraction of runtime spent
  inside the annotated loops (Figure 1).
"""

from repro.passes.annotate import (
    AnnotationReport,
    AnnotatedLoop,
    SkippedLoop,
    annotate_tight_loops,
    clear_annotations,
)
from repro.passes.loopstats import LoopRuntimeStats, loop_runtime_stats

__all__ = [
    "AnnotationReport",
    "AnnotatedLoop",
    "SkippedLoop",
    "annotate_tight_loops",
    "clear_annotations",
    "LoopRuntimeStats",
    "loop_runtime_stats",
]
