"""Loop runtime statistics (Figure 1).

Figure 1 of the paper reports, per benchmark, the fraction of runtime
spent executing tight innermost loops — motivating the whole CBWS design
("on average, over 70% of the benchmarks' runtime is spent executing
tight loops").  This module computes that fraction from a trace: the
instructions committed between each ``BLOCK_BEGIN``/``BLOCK_END`` pair,
over total committed instructions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.events import BLOCK_BEGIN, BLOCK_END, MEMORY_ACCESS
from repro.trace.stream import Trace


@dataclass(frozen=True)
class LoopRuntimeStats:
    """Runtime decomposition of one trace.

    Attributes:
        name: trace/workload name.
        total_instructions: committed instructions in the trace.
        loop_instructions: instructions committed inside annotated blocks.
        loop_memory_accesses: loads/stores committed inside annotated blocks.
        total_memory_accesses: all committed loads/stores.
        block_instances: number of completed code block instances.
    """

    name: str
    total_instructions: int
    loop_instructions: int
    loop_memory_accesses: int
    total_memory_accesses: int
    block_instances: int

    @property
    def loop_fraction(self) -> float:
        """Fraction of instructions inside tight loops — the Fig. 1 bar."""
        if self.total_instructions == 0:
            return 0.0
        return self.loop_instructions / self.total_instructions

    @property
    def loop_access_fraction(self) -> float:
        """Fraction of memory accesses issued inside tight loops."""
        if self.total_memory_accesses == 0:
            return 0.0
        return self.loop_memory_accesses / self.total_memory_accesses


def loop_runtime_stats(trace: Trace) -> LoopRuntimeStats:
    """Decompose a trace's runtime into loop and non-loop parts."""
    loop_instructions = 0
    loop_accesses = 0
    total_accesses = 0
    block_instances = 0
    begin_icount: int | None = None
    for event in trace.events:
        if event.kind == MEMORY_ACCESS:
            total_accesses += 1
            if begin_icount is not None:
                loop_accesses += 1
        elif event.kind == BLOCK_BEGIN:
            begin_icount = event.icount
        elif event.kind == BLOCK_END:
            if begin_icount is not None:
                loop_instructions += event.icount - begin_icount
                block_instances += 1
                begin_icount = None
    return LoopRuntimeStats(
        name=trace.name,
        total_instructions=trace.instructions,
        loop_instructions=loop_instructions,
        loop_memory_accesses=loop_accesses,
        total_memory_accesses=total_accesses,
        block_instances=block_instances,
    )
